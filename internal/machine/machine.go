// Package machine provides the SPMD execution engine of the Vienna Fortran
// Engine: P logical processors executing the same program on local data
// (paper §1: "each processor executes essentially the same code, but on a
// local data set").
//
// A Machine owns a msg.Transport connecting P processors.  Run executes an
// SPMD body as P goroutines, each with a Ctx carrying its rank and
// collectives.  Processor arrays (PROCESSORS R(1:M,1:M), §2.2) and
// processor sections are declared per machine and serve as distribution
// targets.
//
// Collective object creation: global objects such as distributed arrays
// must be logically identical on every processor.  Ctx.CollectiveOnce
// assigns each textual creation site a sequence number (identical across
// processors because the program is SPMD) and has exactly one processor
// run the constructor; all processors share the result.  This mirrors the
// descriptor replication of the VFE (§3.2.1).
package machine

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/health"
	"repro/internal/msg"
	"repro/internal/trace"
)

// Machine is a set of P logical processors sharing a transport, plus an
// optional pool of reserved processors that may join a running epoch
// (WithReserve).
type Machine struct {
	np        int // total physical ranks: base + reserved
	base      int // initially active ranks (epoch 0 membership)
	transport msg.Transport
	commCfg   msg.CommConfig
	liveness  *LivenessConfig
	det       *detector
	joins     *joinReg
	drains    *joinReg       // registered voluntary-drain candidates
	health    *health.Scorer // nil without WithHealth
	work      *workLog       // per-rank cumulative work counters (health)
	// exits[r] is closed when rank r's goroutine of the current Run
	// returns; Regroup waits on the dead members' channels before
	// installing a compacted view, so a survivor that takes over a dead
	// rank's compacted slot has a happens-before edge on everything the
	// dead rank's goroutine wrote.
	exits []chan struct{}
	// run is the engagement state of the current Run: which ranks count
	// toward run completion, and the signal that tells never-admitted
	// reserved ranks to give up.  Written once before the goroutines
	// spawn.
	run *runState

	mu      sync.Mutex
	objects map[int64]*collEntry
	procs   map[string]*ProcArray
}

// runState tracks which ranks of the current Run are "engaged" — their
// goroutine's return is required before the run is over.  The base ranks
// are engaged from the start; a reserved rank becomes engaged the moment
// a survivor admits it into an epoch.  When the last engaged rank
// returns, stop closes and the reserved ranks still parked in AwaitJoin
// unwind with ErrNeverJoined.
type runState struct {
	engaged []atomic.Bool
	wg      sync.WaitGroup
	stop    chan struct{}
}

// engage marks rank r as required for run completion.  Only called from
// a rank that is itself engaged and still running, so the WaitGroup
// counter cannot be concurrently drained to zero.
func (rs *runState) engage(r int) {
	if rs.engaged[r].CompareAndSwap(false, true) {
		rs.wg.Add(1)
	}
}

type collEntry struct {
	once sync.Once
	val  any
}

// Option configures a Machine.
type Option func(*config)

type config struct {
	transport msg.Transport
	cost      *msg.CostModel
	tracer    *trace.Tracer
	comm      msg.CommConfig
	liveness  *LivenessConfig
	reserve   int
	health    *health.Config
}

// WithTransport runs the machine on the given transport (e.g. a
// msg.TCPTransport).  The transport's NP must match the machine's.
func WithTransport(t msg.Transport) Option {
	return func(c *config) { c.transport = t }
}

// WithCostModel attaches a Hockney cost model to the default transport.
// Ignored if WithTransport is also given (attach the model to that
// transport instead).
func WithCostModel(cm *msg.CostModel) Option {
	return func(c *config) { c.cost = cm }
}

// WithTrace attaches an event tracer to the default transport so every
// message, collective, redistribution, and user phase is recorded.
// Ignored if WithTransport is also given (attach the tracer to that
// transport with msg.WithTracer instead).  A nil tracer is a no-op.
func WithTrace(tr *trace.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithCommConfig installs a deadline/retry policy on every processor's
// collectives (see msg.CommConfig).  The zero config blocks forever, the
// historical behaviour.
func WithCommConfig(cc msg.CommConfig) Option {
	return func(c *config) { c.comm = cc }
}

// WithReserve provisions extra transport slots for processors that may
// join the running machine: the transport (and failure detector) are
// sized base+extra, the reserved ranks run the SPMD body with
// Ctx.Reserved() == true and park in Ctx.AwaitJoin until the active
// membership admits them into an epoch (Ctx.Admit, or a Regroup that
// finds them pending).  Requires WithLiveness and a CommConfig Timeout —
// the same machinery a Regroup needs.
func WithReserve(extra int) Option {
	return func(c *config) { c.reserve = extra }
}

// New creates a machine with np logical processors on an in-process
// transport (unless overridden by WithTransport).  With WithReserve(k)
// the transport carries np+k endpoints; the extra ranks are inactive
// until admitted by a join transition.
func New(np int, opts ...Option) *Machine {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.reserve < 0 {
		panic(fmt.Sprintf("machine: negative reserve %d", cfg.reserve))
	}
	if cfg.reserve > 0 && cfg.liveness == nil {
		panic("machine: WithReserve requires WithLiveness (join transitions run over the liveness/epoch machinery)")
	}
	if cfg.health != nil && cfg.liveness == nil {
		panic("machine: WithHealth requires WithLiveness (work reports piggyback on heartbeat traffic)")
	}
	total := np + cfg.reserve
	tr := cfg.transport
	if tr == nil {
		var topts []msg.Option
		if cfg.cost != nil {
			topts = append(topts, msg.WithCost(cfg.cost))
		}
		if cfg.tracer != nil {
			topts = append(topts, msg.WithTracer(cfg.tracer))
		}
		tr = msg.NewChanTransport(total, topts...)
	}
	if tr.NP() != total {
		panic(fmt.Sprintf("machine: transport has %d endpoints, machine wants %d (%d active + %d reserved)", tr.NP(), total, np, cfg.reserve))
	}
	// Timestamp events with the cost model's virtual clock as well as wall
	// time, so summaries can report α/β seconds per phase.
	if t, c := tr.Tracer(), tr.Cost(); t != nil && c != nil {
		t.SetClockSource(c.Clock)
	}
	m := &Machine{
		np:        total,
		base:      np,
		transport: tr,
		commCfg:   cfg.comm,
		liveness:  cfg.liveness,
		objects:   make(map[int64]*collEntry),
		procs:     make(map[string]*ProcArray),
	}
	if m.liveness != nil {
		m.det = newDetector(total, m.liveness.Window)
		m.joins = newJoinReg()
		m.drains = newJoinReg()
	}
	if cfg.health != nil {
		m.health = health.New(total, *cfg.health)
		m.work = newWorkLog(total)
	}
	return m
}

// NP returns the number of initially active processors (the paper's $NP
// intrinsic; the epoch-0 membership).  Reserved join slots are not
// counted — see Capacity.
func (m *Machine) NP() int { return m.base }

// Capacity returns the total number of physical ranks the machine's
// transport carries: the initially active processors plus any reserved
// join slots (WithReserve).
func (m *Machine) Capacity() int { return m.np }

// Transport returns the underlying transport.
func (m *Machine) Transport() msg.Transport { return m.transport }

// Stats returns the transport's traffic statistics.
func (m *Machine) Stats() *msg.Stats { return m.transport.Stats() }

// Cost returns the attached cost model, or nil.
func (m *Machine) Cost() *msg.CostModel { return m.transport.Cost() }

// Tracer returns the attached event tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer { return m.transport.Tracer() }

// Close shuts down the transport.
func (m *Machine) Close() error { return m.transport.Close() }

// Run executes body as an SPMD program: one goroutine per processor, each
// receiving its own Ctx.  Panics in the body are recovered and reported as
// errors with stack traces; like an MPI abort, a rank that panics or
// returns an error shuts the transport down so ranks blocked in
// collectives unwind instead of deadlocking (the machine is unusable
// afterwards).  Run prefers the originating failure — a panic or error
// that is not itself a secondary ErrClosed consequence of the abort — and
// its report names the failing rank.
func (m *Machine) Run(body func(ctx *Ctx) error) error {
	var lv *livenessRuntime
	if m.liveness != nil {
		lv = m.startLiveness()
		// Joined on every exit path: an erroring Run must not leave
		// heartbeat goroutines or transport readers behind.
		defer lv.stop()
	}
	var wg sync.WaitGroup
	errs := make([]error, m.np)
	panicked := make([]bool, m.np)
	excluded := make([]bool, m.np)
	exits := make([]chan struct{}, m.np)
	for r := range exits {
		exits[r] = make(chan struct{})
	}
	m.exits = exits
	// Engagement state: the run is over when every *engaged* rank has
	// returned — the base ranks from the start, reserved ranks once
	// admitted.  The watcher then tells never-admitted reserved ranks to
	// stop waiting.
	rs := &runState{engaged: make([]atomic.Bool, m.np), stop: make(chan struct{})}
	for r := 0; r < m.base; r++ {
		rs.engaged[r].Store(true)
		rs.wg.Add(1)
	}
	m.run = rs
	go func() {
		rs.wg.Wait()
		close(rs.stop)
	}()
	for r := 0; r < m.np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer close(exits[r])
			defer func() {
				// An admitted joiner's exit counts toward run completion;
				// engagement happens-before the welcome message, which
				// happens-before AwaitJoin returns, so the load is ordered.
				if rs.engaged[r].Load() {
					rs.wg.Done()
				}
			}()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("machine: rank %d panicked: %v\n%s", r, rec, debug.Stack())
					panicked[r] = true
					m.transport.Close()
				}
			}()
			ctx := m.newCtx(r)
			if err := body(ctx); err != nil {
				errs[r] = fmt.Errorf("machine: rank %d: %w", r, err)
				if errors.Is(err, ErrExcluded) {
					// A rank voted out of the surviving membership is a
					// casualty the regrouped run expects: it exits
					// without tearing the transport down under the
					// survivors.
					excluded[r] = true
					return
				}
				m.transport.Close()
			}
		}(r)
	}
	wg.Wait()
	pick := func(wantPanic, wantClosed bool) error {
		for r, err := range errs {
			if err != nil && !excluded[r] && panicked[r] == wantPanic && isClosedErr(err) == wantClosed {
				return err
			}
		}
		return nil
	}
	for _, err := range []error{
		pick(true, false),  // originating panic
		pick(false, false), // originating body error
		pick(true, true),   // secondary: panic induced by the abort
		pick(false, true),  // secondary: error induced by the abort
	} {
		if err != nil {
			return err
		}
	}
	// Exclusions alone don't fail the run — unless nobody survived to
	// finish it.
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("machine: every rank excluded: %w", errs[0])
}

// isClosedErr reports whether err is (or textually embeds, for recovered
// panics) the transport-closed failure an SPMD abort induces on the
// surviving ranks.
func isClosedErr(err error) bool {
	return errors.Is(err, msg.ErrClosed) || strings.Contains(err.Error(), ErrClosedText)
}

// ErrClosedText is the marker of secondary failures induced by an SPMD
// abort (matching msg.ErrClosed's message).
const ErrClosedText = "transport closed"

// Ctx is one processor's view of the machine during an SPMD run.  With
// liveness enabled the view is epoch-scoped: after a successful Regroup
// the Ctx is renumbered into the compacted survivor set, its collectives
// run over an epoch-tagged msg.View, and Rank/NP answer in view
// coordinates (epoch 0 is the identity view over all np processors).
type Ctx struct {
	rank     int // view rank (== physical rank until a regroup)
	m        *Machine
	comm     *msg.Comm
	collSeq  int64
	epoch    int
	phys     []int // view rank -> physical rank; nil without liveness
	reserved bool  // a join slot not yet admitted into any epoch
}

func (m *Machine) newCtx(rank int) *Ctx {
	c := &Ctx{rank: rank, m: m}
	ep := m.transport.Endpoint(rank)
	if rank >= m.base {
		// A reserved join slot: no epoch membership yet.  The rank field
		// holds the physical rank; collectives are meaningless until
		// AwaitJoin installs the first admitted view.
		c.reserved = true
		c.comm = msg.NewComm(ep)
		c.comm.SetConfig(m.commCfg)
		return c
	}
	if m.det != nil {
		// Epoch 0 identity view over the active ranks: rank numbering and
		// tags are unchanged, but collectives gain the liveness check — an
		// in-flight operation aborts with ErrEpochRevoked as soon as a
		// member is declared dead, instead of timing out peer by peer.
		phys := make([]int, m.base)
		for i := range phys {
			phys[i] = i
		}
		c.phys = phys
		c.comm = msg.NewComm(msg.NewView(ep, 0, phys, m.epochCheck(phys)))
	} else {
		c.comm = msg.NewComm(ep)
	}
	c.comm.SetConfig(m.commCfg)
	return c
}

// Rank returns this processor's rank in 0..NP-1 of the current
// membership epoch.
func (c *Ctx) Rank() int { return c.rank }

// NP returns the number of processors ($NP) of the current membership
// epoch.
func (c *Ctx) NP() int {
	if c.phys != nil {
		return len(c.phys)
	}
	return c.m.base
}

// Epoch returns the current membership epoch (0 until a regroup or
// join).
func (c *Ctx) Epoch() int { return c.epoch }

// Reserved reports whether this processor is an unadmitted join slot
// (WithReserve): it has no epoch membership and must call AwaitJoin
// before touching collectives.
func (c *Ctx) Reserved() bool { return c.reserved }

// PhysRank returns this processor's physical rank — the transport
// endpoint, trace timeline, per-rank statistics, and cost-model slot,
// all of which survive view renumbering across regroups and joins.
// Per-physical-rank gauges (e.g. msg.Stats wire residency) must be
// indexed with this, never with the view Rank.
func (c *Ctx) PhysRank() int {
	if c.phys != nil {
		return c.phys[c.rank]
	}
	return c.rank
}

// PhysOf translates a view rank of the current epoch to its physical
// rank (identity without liveness).
func (c *Ctx) PhysOf(viewRank int) int {
	if c.phys != nil {
		return c.phys[viewRank]
	}
	return viewRank
}

// physRank is the historical unexported spelling of PhysRank.
func (c *Ctx) physRank() int { return c.PhysRank() }

// Machine returns the owning machine.
func (c *Ctx) Machine() *Machine { return c.m }

// Comm returns this processor's collectives handle.
func (c *Ctx) Comm() *msg.Comm { return c.comm }

// Endpoint returns this processor's point-to-point endpoint.
func (c *Ctx) Endpoint() msg.Endpoint { return c.comm.Endpoint() }

// Barrier synchronizes all processors.  A transport failure is returned
// (wrapped, naming the rank) rather than panicking, so the SPMD driver can
// exit cleanly with the failing rank.
func (c *Ctx) Barrier() error {
	return c.comm.Barrier()
}

// CollectiveOnce runs create on exactly one processor per textual call
// site and returns the shared result on every processor.  All processors
// must call it in the same order (SPMD discipline); the sequence number
// pairs the calls.  The call does not synchronize beyond the constructor
// itself — follow with Barrier when the object must be fully visible
// before unrelated communication.
func (c *Ctx) CollectiveOnce(create func() any) any {
	defer c.Tracer().BeginSpan(c.physRank(), trace.CatCollective, "collective-once").End()
	c.collSeq++
	// The epoch is folded into the pairing key: after a regroup the
	// survivors restart the sequence at 0 in the new epoch, so their
	// post-recovery call sites can never pair with (and wrongly adopt)
	// objects created before the membership change.
	id := c.collSeq | int64(c.epoch)<<40
	c.m.mu.Lock()
	e, ok := c.m.objects[id]
	if !ok {
		e = &collEntry{}
		c.m.objects[id] = e
	}
	c.m.mu.Unlock()
	e.once.Do(func() { e.val = create() })
	return e.val
}

// Charge adds modeled local-computation time to this processor's virtual
// clock (no-op without a cost model).
func (c *Ctx) Charge(seconds float64) {
	if cm := c.m.Cost(); cm != nil {
		cm.Charge(c.physRank(), seconds)
	}
}

// Tracer returns the machine's event tracer, or nil.
func (c *Ctx) Tracer() *trace.Tracer { return c.m.Tracer() }

// PhaseBegin opens a named user phase on this processor's trace
// timeline.  Phases may nest; messages and barrier waits are charged to
// the innermost open phase-like span in the summary.  No-op without a
// tracer.
func (c *Ctx) PhaseBegin(name string) {
	c.Tracer().BeginSpan(c.physRank(), trace.CatPhase, name)
}

// PhaseEnd closes the named user phase opened by PhaseBegin.
func (c *Ctx) PhaseEnd(name string) {
	c.Tracer().EndSpan(c.physRank(), trace.CatPhase, name)
}
