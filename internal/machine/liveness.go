package machine

import (
	"sync"
	"time"

	"repro/internal/msg"
)

// LivenessConfig enables the machine's failure detector: every processor
// periodically sends a heartbeat to every peer on the reserved
// msg.TagHeartbeat tag, and a machine-wide detector declares a processor
// permanently dead once no heartbeat from it has been observed for the
// silence window.  The declaration is sticky — a processor that falls
// silent past the window is treated as lost even if (say) a partitioned
// link later heals; this is the fail-stop model checkpoint recovery
// needs, not a suspicion list.
//
// Because the detector state is shared by all ranks of the in-process
// machine, survivors trivially agree on the surviving rank set; a
// distributed deployment would need a membership consensus round here,
// which is out of scope for this engine (the paper's model is a static
// processor set — liveness exists to drive the checkpoint/restart
// experiments).
type LivenessConfig struct {
	// Interval between heartbeats each rank sends to every peer.
	// Defaults to 10ms.
	Interval time.Duration
	// Window is the silence span after which a peer is declared dead.
	// Defaults to 8×Interval.  It must be comfortably smaller than the
	// communication layer's total retry budget, so death is detected
	// before a blocked collective aborts the run.
	Window time.Duration
}

func (lc LivenessConfig) withDefaults() LivenessConfig {
	if lc.Interval <= 0 {
		lc.Interval = 10 * time.Millisecond
	}
	if lc.Window <= 0 {
		lc.Window = 8 * lc.Interval
	}
	return lc
}

// WithLiveness runs the failure detector alongside every Run on this
// machine.
func WithLiveness(lc LivenessConfig) Option {
	l := lc.withDefaults()
	return func(c *config) { c.liveness = &l }
}

// detector is the machine-wide failure detector state.  lastSeen[r] is
// only advanced by heartbeats actually received *from* r — a rank never
// vouches for itself — so a rank whose outbound messages are all lost
// (the fault injector's permanent-kill model) goes silent here exactly
// as a crashed process would.
type detector struct {
	mu       sync.Mutex
	window   time.Duration
	lastSeen []time.Time
	dead     []bool
}

func newDetector(np int, window time.Duration) *detector {
	d := &detector{
		window:   window,
		lastSeen: make([]time.Time, np),
		dead:     make([]bool, np),
	}
	now := time.Now()
	for i := range d.lastSeen {
		d.lastSeen[i] = now
	}
	return d
}

func (d *detector) beat(rank int) {
	d.mu.Lock()
	d.lastSeen[rank] = time.Now()
	d.mu.Unlock()
}

// sweep marks every rank silent for longer than the window as dead
// (sticky).  With a single processor there are no peers to observe
// anyone, so nothing is ever marked.
func (d *detector) sweep() {
	if len(d.lastSeen) < 2 {
		return
	}
	now := time.Now()
	d.mu.Lock()
	for r := range d.lastSeen {
		if !d.dead[r] && now.Sub(d.lastSeen[r]) > d.window {
			d.dead[r] = true
		}
	}
	d.mu.Unlock()
}

// snapshotDead returns a copy of the sticky dead mask, indexed by
// physical rank.
func (d *detector) snapshotDead() []bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]bool, len(d.dead))
	copy(out, d.dead)
	return out
}

// firstDeadOf returns the lowest physical rank among phys that the
// detector has declared dead, or -1 when all are live.
func (d *detector) firstDeadOf(phys []int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range phys {
		if d.dead[r] {
			return r
		}
	}
	return -1
}

func (d *detector) survivors() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.dead))
	for r, dd := range d.dead {
		if !dd {
			out = append(out, r)
		}
	}
	return out
}

// Survivors returns the ranks the failure detector has not declared
// dead, in rank order, or nil when the machine runs without liveness
// (WithLiveness).  After a Run aborted by a permanent rank loss, this is
// the processor set a recovery run should be sized to.
func (m *Machine) Survivors() []int {
	if m.det == nil {
		return nil
	}
	return m.det.survivors()
}

// livenessRuntime owns the heartbeat goroutines of one Run: per rank,
// one sender (heartbeats to every peer each interval) and one monitor
// (receive loop on the heartbeat tag feeding the detector).  stop()
// terminates and joins all of them — Run must not leak goroutines, even
// when it returns an error.
type livenessRuntime struct {
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func (m *Machine) startLiveness() *livenessRuntime {
	lc := *m.liveness
	lv := &livenessRuntime{stopCh: make(chan struct{})}
	for r := 0; r < m.np; r++ {
		ep := m.transport.Endpoint(r)

		lv.wg.Add(1)
		go func(rank int) { // sender
			defer lv.wg.Done()
			tick := time.NewTicker(lc.Interval)
			defer tick.Stop()
			for {
				select {
				case <-lv.stopCh:
					return
				case <-tick.C:
				}
				// With health enabled the heartbeat carries this rank's
				// latest cumulative work counters — the piggyback that
				// feeds the throughput scorer at zero extra messages.
				payload := m.heartbeatPayload(rank)
				for to := 0; to < m.np; to++ {
					if to == rank {
						continue
					}
					if err := ep.Send(to, msg.TagHeartbeat, payload); err != nil {
						return // transport closed: the run is over
					}
				}
			}
		}(r)

		lv.wg.Add(1)
		go func() { // monitor
			defer lv.wg.Done()
			for {
				p, err := ep.RecvTimeout(msg.AnySource, msg.TagHeartbeat, lc.Interval)
				switch {
				case err == nil:
					m.det.beat(p.From)
					m.observeHeartbeat(p.From, p.Data)
				case isClosedErr(err):
					// An SPMD abort, not a peer death: the detector keeps
					// whatever it knew, and the loop exits.
					return
				}
				m.det.sweep()
				select {
				case <-lv.stopCh:
					return
				default:
				}
			}
		}()
	}
	return lv
}

func (lv *livenessRuntime) stop() {
	close(lv.stopCh)
	lv.wg.Wait()
}
