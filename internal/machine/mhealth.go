package machine

import (
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/msg"
)

// This file wires the health scorer (internal/health) into the
// machine's existing heartbeat traffic: ranks report completed work via
// Ctx.ReportWork into a machine-shared cumulative log, each heartbeat
// the liveness sender emits carries the reporter's latest cumulative
// counters as its payload, and every heartbeat monitor feeds received
// counters into the shared scorer.  No new goroutines, no new timers,
// no extra messages — the health plane rides entirely on traffic the
// liveness plane already pays for.

// WithHealth runs a per-rank throughput scorer alongside every Run on
// this machine, fed by work reports piggybacked on heartbeat traffic.
// Requires WithLiveness (there is no heartbeat to piggyback on
// otherwise).  Read the scores with Machine.Health.
func WithHealth(hc health.Config) Option {
	return func(c *config) { c.health = &hc }
}

// Health returns the machine's rank-health scorer, or nil without
// WithHealth.
func (m *Machine) Health() *health.Scorer { return m.health }

// workLog is the machine-shared cumulative work counters, indexed by
// physical rank.  Counters only grow; the heartbeat sender samples them
// at whatever rate it ticks, and the scorer recovers per-report deltas,
// so sampling rate never skews the score.
type workLog struct {
	mu    sync.Mutex
	seq   []int64
	units []float64
	secs  []float64
}

func newWorkLog(np int) *workLog {
	return &workLog{
		seq:   make([]int64, np),
		units: make([]float64, np),
		secs:  make([]float64, np),
	}
}

func (w *workLog) report(rank int, units, secs float64) {
	w.mu.Lock()
	w.seq[rank]++
	w.units[rank] += units
	w.secs[rank] += secs
	w.mu.Unlock()
}

func (w *workLog) snapshot(rank int) (seq int64, units, secs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq[rank], w.units[rank], w.secs[rank]
}

// ReportWork folds one completed batch of application work into this
// rank's health report: units is the amount of work (iterations, rows,
// particles — any per-rank-comparable measure) and busy the computation
// time it took.  Report compute time, not barrier waits: the contrast
// between a straggler's cost-per-unit and the median is the signal.
// No-op without WithHealth.
func (c *Ctx) ReportWork(units float64, busy time.Duration) {
	if c.m.work == nil {
		return
	}
	c.m.work.report(c.PhysRank(), units, busy.Seconds())
}

// heartbeatPayload returns the work-report payload rank's next
// heartbeat should carry: (seq, cumulative units, cumulative seconds)
// as three float64s, or nil when health is off or the rank has not
// reported yet (a plain liveness heartbeat).
func (m *Machine) heartbeatPayload(rank int) []byte {
	if m.work == nil {
		return nil
	}
	seq, units, secs := m.work.snapshot(rank)
	if seq == 0 {
		return nil
	}
	return msg.EncodeFloat64s([]float64{float64(seq), units, secs})
}

// observeHeartbeat feeds a received heartbeat's piggybacked work report
// into the shared scorer.  Plain heartbeats (no payload) are ignored;
// the scorer deduplicates by sequence, so the n monitors of the
// in-process machine fold each report in exactly once.
func (m *Machine) observeHeartbeat(from int, data []byte) {
	if m.health == nil || len(data) < 24 {
		return
	}
	v := msg.DecodeFloat64s(data)
	if len(v) >= 3 {
		m.health.Observe(from, int64(v[0]), v[1], v[2])
	}
}
