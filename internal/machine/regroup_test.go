package machine

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/msg"
)

// killPlan drops every outbound message of rank r after its first
// `after` sends — the permanent-kill model.
func killPlan(t *testing.T, r, after int) *msg.FaultPlan {
	t.Helper()
	return &msg.FaultPlan{Rules: []msg.FaultRule{{Kind: msg.FaultDrop, Rank: r, Peer: -1, After: after}}}
}

// regroupMachine builds a 4-rank machine with liveness, deadlines, and
// the given fault plan.
func regroupMachine(t *testing.T, plan *msg.FaultPlan) *Machine {
	t.Helper()
	lc, cc := hbCfg()
	var tr msg.Transport = msg.NewChanTransport(4)
	if plan != nil {
		tr = msg.NewFaultTransport(tr, plan)
	}
	return New(4, WithTransport(tr), WithLiveness(lc), WithCommConfig(cc))
}

// TestRegroupAfterKill: rank 2 goes permanently silent mid-run; the
// in-flight collective aborts with ErrEpochRevoked, the survivors
// regroup into a compacted 3-rank epoch-1 view, and collectives on the
// new epoch work — including an allreduce whose result proves all three
// renumbered ranks participated.
func TestRegroupAfterKill(t *testing.T) {
	m := regroupMachine(t, killPlan(t, 2, 0))
	defer m.Close()
	var sum []int // written by view rank 0 of epoch 1
	err := m.Run(func(ctx *Ctx) error {
		err := ctx.Barrier()
		if err == nil {
			// The killed rank's own barrier can succeed (it still receives);
			// it learns of its exclusion from the revoked epoch instead.
			for i := 0; i < 200 && err == nil; i++ {
				time.Sleep(5 * time.Millisecond)
				err = ctx.Barrier()
			}
			if err == nil {
				return errors.New("barrier kept succeeding with a dead member")
			}
		}
		if !errors.Is(err, ErrEpochRevoked) {
			return errors.New("want ErrEpochRevoked, got: " + err.Error())
		}
		if err := ctx.Regroup(); err != nil {
			return err
		}
		if ctx.Epoch() != 1 || ctx.NP() != 3 {
			t.Errorf("after regroup: epoch %d np %d, want 1, 3", ctx.Epoch(), ctx.NP())
		}
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 6 { // 1+2+3 over the renumbered ranks
			t.Errorf("epoch-1 allreduce = %d, want 6", got[0])
		}
		if ctx.Rank() == 0 {
			sum = got
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sum) == 0 {
		t.Fatal("no epoch-1 rank 0 recorded a result")
	}
	if s := m.Survivors(); len(s) != 3 || s[0] != 0 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("survivors = %v, want [0 1 3]", s)
	}
}

// TestRegroupExcludesDeadRank: the killed rank itself observes its death
// in the shared detector and gets ErrExcluded from Regroup; returning it
// must not abort the survivors' run.
func TestRegroupExcludesDeadRank(t *testing.T) {
	m := regroupMachine(t, killPlan(t, 2, 0))
	defer m.Close()
	sawExcluded := false
	err := m.Run(func(ctx *Ctx) error {
		var err error
		for i := 0; i < 400 && err == nil; i++ {
			time.Sleep(5 * time.Millisecond)
			err = ctx.Barrier()
		}
		if err == nil {
			return errors.New("no rank ever saw the revocation")
		}
		if rerr := ctx.Regroup(); rerr != nil {
			if errors.Is(rerr, ErrExcluded) && ctx.Rank() == 2 {
				sawExcluded = true
			}
			return rerr
		}
		return ctx.Barrier()
	})
	if err != nil {
		t.Fatalf("survivors' run should succeed; got: %v", err)
	}
	if !sawExcluded {
		t.Fatal("dead rank never got ErrExcluded")
	}
}

// TestRegroupRequiresLiveness / timeout config: misconfiguration is a
// named error, not a hang.
func TestRegroupRequiresLivenessAndTimeout(t *testing.T) {
	m := New(2)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error { return ctx.Regroup() })
	if err == nil {
		t.Fatal("Regroup without liveness should fail")
	}

	lc, _ := hbCfg()
	m2 := New(2, WithLiveness(lc))
	defer m2.Close()
	err = m2.Run(func(ctx *Ctx) error { return ctx.Regroup() })
	if err == nil {
		t.Fatal("Regroup without a CommConfig timeout should fail")
	}
}

// TestRegroupNoDeathTimesOut: calling Regroup when nobody is dead must
// return an error after the detection budget, so a spurious recovery
// attempt surfaces the original failure instead of spinning.
func TestRegroupNoDeathTimesOut(t *testing.T) {
	m := regroupMachine(t, nil)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		err := ctx.Regroup()
		if err == nil {
			return errors.New("regroup with all ranks alive should fail")
		}
		if errors.Is(err, ErrExcluded) || errors.Is(err, ErrEpochRevoked) {
			return errors.New("want a plain no-death error, got: " + err.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEpochRevokedIsTyped: the abort delivered to an in-flight
// collective on a revoked epoch unwraps to ErrEpochRevoked, so recovery
// loops can switch on it.
func TestEpochRevokedIsTyped(t *testing.T) {
	m := regroupMachine(t, killPlan(t, 2, 0))
	defer m.Close()
	typed := make([]bool, 4) // indexed by rank; no rank returns an error,
	// so the transport stays open and every rank's own checkLive fires
	// (a returned error would close the transport and turn the others'
	// aborts into plain ErrClosed).
	err := m.Run(func(ctx *Ctx) error {
		var err error
		for i := 0; i < 400 && err == nil; i++ {
			time.Sleep(5 * time.Millisecond)
			err = ctx.Barrier()
		}
		if err == nil {
			return errors.New("collectives kept succeeding")
		}
		typed[ctx.Rank()] = errors.Is(err, ErrEpochRevoked)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for r, ok := range typed {
		if !ok {
			t.Errorf("rank %d: abort was not typed ErrEpochRevoked", r)
		}
	}
}

// TestExcludedRunLeaksNoGoroutines extends the goroutine-leak gate to
// the online-recovery path: a run where one rank exits with ErrExcluded
// while the survivors regroup and finish must join everything — rank
// goroutines, heartbeat senders/monitors, retry tickers.
func TestExcludedRunLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 2; i++ {
		m := regroupMachine(t, killPlan(t, 2, 0))
		err := m.Run(func(ctx *Ctx) error {
			var err error
			for i := 0; i < 400 && err == nil; i++ {
				time.Sleep(5 * time.Millisecond)
				err = ctx.Barrier()
			}
			if err == nil {
				return errors.New("no revocation observed")
			}
			if rerr := ctx.Regroup(); rerr != nil {
				return rerr
			}
			return ctx.Barrier()
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		m.Close()
	}
	if n := settleGoroutines(base+2, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines: %d before, %d after excluded runs (leak)", base, n)
	}
}
