package machine

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/msg"
)

// TestDrainShrinksEpoch: all four ranks agree to drain view rank 2; the
// drained rank exits with ErrDrained, the survivors install a compacted
// 3-rank epoch-1 view and their collectives work, and the run as a
// whole succeeds — a voluntary departure is not an abort.
func TestDrainShrinksEpoch(t *testing.T) {
	lc, cc := hbCfg()
	m := New(4, WithLiveness(lc), WithCommConfig(cc))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		if err := ctx.Barrier(); err != nil {
			return err
		}
		derr := ctx.Drain(2)
		if ctx.PhysRank() == 2 {
			if !errors.Is(derr, ErrDrained) {
				return fmt.Errorf("drained rank got %v, want ErrDrained", derr)
			}
			return derr
		}
		if derr != nil {
			return derr
		}
		if ctx.Epoch() != 1 || ctx.NP() != 3 {
			t.Errorf("after drain: epoch %d np %d, want 1, 3", ctx.Epoch(), ctx.NP())
		}
		mem := ctx.Members()
		if len(mem) != 3 || mem[0] != 0 || mem[1] != 1 || mem[2] != 3 {
			t.Errorf("members = %v, want [0 1 3]", mem)
		}
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 6 { // 1+2+3 over the renumbered survivors
			t.Errorf("epoch-1 allreduce = %d, want 6", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if pd := m.PendingDrains(); len(pd) != 0 {
		t.Fatalf("drain registry not cleared: %v", pd)
	}
}

// TestDrainRacingDeathOneEpoch: rank 3 dies for real while the
// membership drains rank 2.  The combined-mask agreement resolves both
// in ONE transition: the survivors land directly in a 2-rank epoch 1,
// the dead rank is excluded, the drained rank released.
func TestDrainRacingDeathOneEpoch(t *testing.T) {
	m := regroupMachine(t, killPlan(t, 3, 0))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		var err error
		for i := 0; i < 400 && err == nil; i++ {
			time.Sleep(5 * time.Millisecond)
			err = ctx.Barrier()
		}
		if err == nil {
			return errors.New("no revocation observed")
		}
		derr := ctx.Drain(2)
		switch ctx.PhysRank() {
		case 2:
			if !errors.Is(derr, ErrDrained) {
				return fmt.Errorf("drained rank got %v, want ErrDrained", derr)
			}
			return derr
		case 3:
			if !errors.Is(derr, ErrExcluded) {
				return fmt.Errorf("dead rank got %v, want ErrExcluded", derr)
			}
			return derr
		}
		if derr != nil {
			return derr
		}
		if ctx.Epoch() != 1 || ctx.NP() != 2 {
			t.Errorf("drain+death resolved to epoch %d np %d, want ONE transition to epoch 1, np 2", ctx.Epoch(), ctx.NP())
		}
		mem := ctx.Members()
		if len(mem) != 2 || mem[0] != 0 || mem[1] != 1 {
			t.Errorf("members = %v, want [0 1]", mem)
		}
		got, err := ctx.Comm().AllreduceInts([]int{ctx.Rank() + 1}, msg.SumInt)
		if err != nil {
			return err
		}
		if got[0] != 3 {
			t.Errorf("epoch-1 allreduce = %d, want 3", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestDrainedRunLeaksNoGoroutines: the drained rank's goroutine, its
// heartbeat sender/monitor, and the health plumbing must all be joined
// when the run ends — same gate the excluded/erroring paths pass.
func TestDrainedRunLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 2; i++ {
		lc, cc := hbCfg()
		m := New(4, WithLiveness(lc), WithCommConfig(cc), WithHealth(health.Config{}))
		err := m.Run(func(ctx *Ctx) error {
			ctx.ReportWork(1, time.Millisecond)
			if err := ctx.Barrier(); err != nil {
				return err
			}
			derr := ctx.Drain(1)
			if ctx.PhysRank() == 1 {
				if !errors.Is(derr, ErrDrained) {
					return fmt.Errorf("drained rank got %v, want ErrDrained", derr)
				}
				return derr
			}
			if derr != nil {
				return derr
			}
			return ctx.Barrier()
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		m.Close()
	}
	if n := settleGoroutines(base+2, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines: %d before, %d after drained runs (leak)", base, n)
	}
}

// TestHealthPiggyback: end to end through the real heartbeat plane —
// ranks report work, heartbeats carry the counters, monitors feed the
// shared scorer, and the 8× rank is the one classified Degraded.
func TestHealthPiggyback(t *testing.T) {
	lc, cc := hbCfg()
	m := New(4, WithLiveness(lc), WithCommConfig(cc),
		WithHealth(health.Config{Window: 4, DegradedRatio: 2, SuspectRatio: 50, Hysteresis: 2}))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		cost := time.Millisecond
		if ctx.PhysRank() == 3 {
			cost = 8 * time.Millisecond
		}
		for i := 0; i < 40; i++ {
			ctx.ReportWork(100, cost)
			time.Sleep(5 * time.Millisecond)
		}
		return ctx.Barrier()
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	h := m.Health()
	if h == nil {
		t.Fatal("Machine.Health() = nil with WithHealth")
	}
	if n := h.Observations(3); n < 3 {
		t.Fatalf("only %d observations of rank 3 made it through the heartbeat plane", n)
	}
	if c := h.Class(3); c != health.Degraded {
		t.Fatalf("8x rank classified %v, want degraded (slowdown %.2f over %d obs)",
			c, h.Slowdown(3), h.Observations(3))
	}
	if sd := h.Slowdown(3); sd < 3 {
		t.Fatalf("slowdown(3) = %.2f, want ≈8", sd)
	}
	for r := 0; r < 3; r++ {
		if c := h.Class(r); c != health.Healthy {
			t.Fatalf("healthy rank %d classified %v", r, c)
		}
	}
	rep := h.Report([]int{0, 1, 2, 3})
	if !rep[3].EverDegraded {
		t.Fatal("EverDegraded not set on the straggler")
	}
}

// TestDrainValidation: misconfiguration and bad arguments are named
// errors, not hangs — and WithHealth without WithLiveness panics at
// construction, like WithReserve.
func TestDrainValidation(t *testing.T) {
	m := New(2)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		if err := ctx.Drain(0); err == nil {
			return errors.New("Drain without liveness should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	lc, cc := hbCfg()
	m2 := New(2, WithLiveness(lc), WithCommConfig(cc))
	defer m2.Close()
	err = m2.Run(func(ctx *Ctx) error {
		if err := ctx.Drain(7); err == nil {
			return errors.New("Drain of an out-of-range view rank should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithHealth without WithLiveness should panic")
			}
		}()
		New(2, WithHealth(health.Config{}))
	}()
}
