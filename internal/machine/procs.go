package machine

import (
	"fmt"
	"sync"

	"repro/internal/index"
)

// ProcArray is a named, possibly multi-dimensional arrangement of the
// machine's processors — the PROCESSORS declaration of §2.2:
//
//	PROCESSORS R(1:M,1:M)
//
// Processor coordinates map to transport ranks in column-major order
// (Fortran convention), starting at rank 0.  A machine may declare several
// processor arrays; they all view the same physical processors.
type ProcArray struct {
	name string
	dom  index.Domain

	coordsOnce sync.Once
	coordsTab  []index.Point // rank -> coordinates, built lazily

	wholeOnce sync.Once
	whole     *ProcSection
}

// Procs declares (or retrieves, if already declared with identical shape)
// a processor array.  The product of extents must not exceed the machine
// size; it may be smaller, in which case high ranks hold no data.
func (m *Machine) Procs(name string, bounds ...[2]int) *ProcArray {
	dom := index.NewDomain(bounds...)
	if dom.Size() == 0 || dom.Size() > m.np {
		panic(fmt.Sprintf("machine: processor array %s%v needs %d processors, machine has %d",
			name, bounds, dom.Size(), m.np))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.procs[name]; ok {
		if !old.dom.Equal(dom) {
			panic(fmt.Sprintf("machine: processor array %s redeclared with different shape", name))
		}
		return old
	}
	pa := &ProcArray{name: name, dom: dom}
	m.procs[name] = pa
	return pa
}

// ProcsDim declares a processor array with default 1-based bounds.
func (m *Machine) ProcsDim(name string, extents ...int) *ProcArray {
	bounds := make([][2]int, len(extents))
	for i, e := range extents {
		bounds[i] = [2]int{1, e}
	}
	return m.Procs(name, bounds...)
}

// Name returns the declaration name.
func (p *ProcArray) Name() string { return p.name }

// Domain returns the coordinate domain.
func (p *ProcArray) Domain() index.Domain { return p.dom }

// NDims returns the number of processor dimensions.
func (p *ProcArray) NDims() int { return p.dom.Rank() }

// Extent returns the number of processors along dimension k.
func (p *ProcArray) Extent(k int) int { return p.dom.Extent(k) }

// Size returns the total number of processors in the array.
func (p *ProcArray) Size() int { return p.dom.Size() }

// RankOf maps processor coordinates to a transport rank.
func (p *ProcArray) RankOf(coords []int) int {
	if !p.dom.Contains(coords) {
		panic(fmt.Sprintf("machine: coords %v outside processor array %s%v", coords, p.name, p.dom))
	}
	return p.dom.Offset(coords)
}

// CoordsOf maps a transport rank to processor coordinates; ok is false if
// the rank lies outside the array.  The returned slice is shared (the
// mapping is precomputed once — rank lookups sit on the schedule-cache
// hot path) and must not be modified.
func (p *ProcArray) CoordsOf(rank int) ([]int, bool) {
	if rank < 0 || rank >= p.Size() {
		return nil, false
	}
	p.coordsOnce.Do(func() {
		tab := make([]index.Point, p.Size())
		for r := range tab {
			tab[r] = p.dom.At(r)
		}
		p.coordsTab = tab
	})
	return p.coordsTab[rank], true
}

// Ranks lists all transport ranks in the array in coordinate order.
func (p *ProcArray) Ranks() []int {
	out := make([]int, p.Size())
	for i := range out {
		out[i] = i
	}
	return out
}

// Whole returns the section covering the full processor array.  The
// section is shared across calls: distribution expressions evaluate
// "TO <array>" on every executable DISTRIBUTE, and sharing keeps the
// section's rank-coordinate cache warm across them.
func (p *ProcArray) Whole() *ProcSection {
	p.wholeOnce.Do(func() {
		p.whole = &ProcSection{pa: p, sec: p.dom.WholeSection()}
	})
	return p.whole
}

// Section selects a rectangular subset of the processor array, e.g.
// R(1:2, 2:2).  Triplets follow index.NewSection conventions.
func (p *ProcArray) Section(triplets ...[3]int) *ProcSection {
	if len(triplets) != p.NDims() {
		panic(fmt.Sprintf("machine: section rank %d != processor array rank %d", len(triplets), p.NDims()))
	}
	s := index.NewSection(triplets...)
	s.ForEach(func(pt index.Point) bool {
		if !p.dom.Contains(pt) {
			panic(fmt.Sprintf("machine: section point %v outside processor array %s%v", pt, p.name, p.dom))
		}
		return true
	})
	return &ProcSection{pa: p, sec: s}
}

// ProcSection is a rectangular (possibly strided) subset of a processor
// array, used as the target of a distribution ("TO R(...)", §2.2).  Its
// own coordinate space is dense 0-based per dimension; RankOf converts
// back to transport ranks through the parent array.
type ProcSection struct {
	pa  *ProcArray
	sec index.Section

	coordsOnce sync.Once
	coordsTab  [][]int // rank -> section coordinates (nil = not a member)

	strOnce sync.Once
	str     string
}

// Array returns the parent processor array.
func (s *ProcSection) Array() *ProcArray { return s.pa }

// NDims returns the section's number of dimensions.
func (s *ProcSection) NDims() int { return s.sec.Rank() }

// Extent returns the number of processors along section dimension k.
func (s *ProcSection) Extent(k int) int { return s.sec.DimCount(k) }

// Size returns the number of processors in the section.
func (s *ProcSection) Size() int { return s.sec.Size() }

// RankOf maps dense section coordinates (0-based per dimension) to a
// transport rank.
func (s *ProcSection) RankOf(coords []int) int {
	if len(coords) != s.NDims() {
		panic(fmt.Sprintf("machine: section coords rank %d != %d", len(coords), s.NDims()))
	}
	abs := make(index.Point, len(coords))
	for k, c := range coords {
		if c < 0 || c >= s.Extent(k) {
			panic(fmt.Sprintf("machine: section coord %d out of range [0,%d) in dim %d", c, s.Extent(k), k))
		}
		abs[k] = s.sec.Lo[k] + c*s.sec.Stride[k]
	}
	return s.pa.RankOf(abs)
}

// CoordsOf maps a transport rank to dense section coordinates; ok is
// false when the rank is not part of the section.  The returned slice is
// shared (the mapping is precomputed once — distribution ownership tests
// call this per rank on the schedule-cache hot path) and must not be
// modified.
func (s *ProcSection) CoordsOf(rank int) ([]int, bool) {
	if rank < 0 || rank >= s.pa.Size() {
		return nil, false
	}
	s.coordsOnce.Do(func() {
		tab := make([][]int, s.pa.Size())
		for r := range tab {
			tab[r] = s.coordsOf(r)
		}
		s.coordsTab = tab
	})
	c := s.coordsTab[rank]
	return c, c != nil
}

func (s *ProcSection) coordsOf(rank int) []int {
	abs, ok := s.pa.CoordsOf(rank)
	if !ok {
		return nil
	}
	out := make([]int, s.NDims())
	for k := range out {
		d := abs[k] - s.sec.Lo[k]
		if d < 0 || d%s.sec.Stride[k] != 0 {
			return nil
		}
		c := d / s.sec.Stride[k]
		if c >= s.Extent(k) {
			return nil
		}
		out[k] = c
	}
	return out
}

// Ranks lists the transport ranks of the section in coordinate order
// (first section dimension fastest).
func (s *ProcSection) Ranks() []int {
	out := make([]int, 0, s.Size())
	s.sec.ForEach(func(p index.Point) bool {
		out = append(out, s.pa.RankOf(p))
		return true
	})
	return out
}

// Contains reports whether the transport rank belongs to the section.
func (s *ProcSection) Contains(rank int) bool {
	_, ok := s.CoordsOf(rank)
	return ok
}

// Equal reports whether two sections denote the same processor set with
// the same shape.
func (s *ProcSection) Equal(o *ProcSection) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.pa != o.pa || s.NDims() != o.NDims() {
		return false
	}
	for k := 0; k < s.NDims(); k++ {
		if s.sec.Lo[k] != o.sec.Lo[k] || s.sec.Hi[k] != o.sec.Hi[k] || s.sec.Stride[k] != o.sec.Stride[k] {
			return false
		}
	}
	return true
}

func (s *ProcSection) String() string {
	s.strOnce.Do(func() {
		s.str = s.pa.name + s.sec.String()
	})
	return s.str
}
