package machine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/msg"
	"repro/internal/trace"
)

// This file is the scale-OUT half of the membership layer: where
// regroup.go shrinks an epoch after a death, a *join* grows it.  A
// reserved rank (WithReserve) registers itself and parks in AwaitJoin;
// the active members agree — over the same coordinator-free mask
// exchange a Regroup uses — to admit it, transition to epoch e+1 with a
// larger compacted numbering, and the new epoch's rank 0 hands the
// joiner its view.  The in-process registry plays the role a listening
// socket would in a distributed deployment: registration is the "dial".

// ErrNeverJoined is returned by AwaitJoin on a reserved rank that was
// still unadmitted when the run's engaged ranks all finished (or the
// transport shut down).  It wraps ErrExcluded, so Machine.Run treats
// the rank as an expected casualty, not an SPMD abort.
var ErrNeverJoined = fmt.Errorf("machine: reserved rank was never admitted: %w", ErrExcluded)

// joinReg is the machine-shared registry of reserved ranks waiting to
// be admitted.  Like the failure detector it is deliberately
// in-process-shared state: the analogue of a membership service's
// connection table, not something the paper's static-processor model
// provides.
type joinReg struct {
	mu      sync.Mutex
	pending map[int]bool // physical rank -> registered
}

func newJoinReg() *joinReg {
	return &joinReg{pending: make(map[int]bool)}
}

func (j *joinReg) add(p int) {
	j.mu.Lock()
	j.pending[p] = true
	j.mu.Unlock()
}

func (j *joinReg) remove(ps []int) {
	j.mu.Lock()
	for _, p := range ps {
		delete(j.pending, p)
	}
	j.mu.Unlock()
}

func (j *joinReg) snapshot() []int {
	j.mu.Lock()
	out := make([]int, 0, len(j.pending))
	for p := range j.pending {
		out = append(out, p)
	}
	j.mu.Unlock()
	sort.Ints(out)
	return out
}

// pendingJoiners returns the registered reserved ranks that could be
// admitted into an epoch whose member set is phys: not already members,
// not declared dead.
func (m *Machine) pendingJoiners(phys []int) []int {
	if m.joins == nil {
		return nil
	}
	isMember := make(map[int]bool, len(phys))
	for _, p := range phys {
		isMember[p] = true
	}
	dead := m.det.snapshotDead()
	var out []int
	for _, p := range m.joins.snapshot() {
		if !isMember[p] && !dead[p] {
			out = append(out, p)
		}
	}
	return out
}

// PendingJoiners returns the physical ranks currently registered and
// waiting to be admitted (nil without WithReserve/WithLiveness).
func (m *Machine) PendingJoiners() []int {
	if m.joins == nil {
		return nil
	}
	return m.joins.snapshot()
}

// AwaitJoin registers this reserved rank with the machine and blocks
// until an active member admits it into a membership epoch (Ctx.Admit,
// or a Ctx.Regroup that found it pending).  On admission the Ctx holds
// the new epoch's view — renumbered rank, epoch-folded tags, fresh
// collective sequence — and AwaitJoin returns after the epoch's
// confirmation barrier, so the joiner is fully synchronized with the
// members before the body resumes SPMD execution.
//
// If the run ends without an admission (all engaged ranks returned, or
// the transport closed under an abort), AwaitJoin returns
// ErrNeverJoined, which the body should return; Machine.Run treats it
// as a non-fatal exit.  A joiner that the failure detector declared
// dead while waiting returns ErrExcluded.
func (c *Ctx) AwaitJoin() error {
	m := c.m
	if !c.reserved {
		return errors.New("machine: AwaitJoin on a non-reserved rank")
	}
	if m.commCfg.Timeout <= 0 {
		return errors.New("machine: AwaitJoin requires a CommConfig Timeout (the same machinery Regroup needs)")
	}
	myPhys := c.rank
	tr := m.Tracer()
	tr.BeginSpan(myPhys, trace.CatPhase, "await-join")
	defer tr.EndSpan(myPhys, trace.CatPhase, "await-join")

	m.joins.add(myPhys)
	ep := m.transport.Endpoint(myPhys)
	poll := m.liveness.Interval
	for {
		pkt, err := ep.RecvTimeout(msg.AnySource, msg.TagJoinWelcome, poll)
		switch {
		case err == nil:
			vals := msg.DecodeInts(pkt.Data)
			if len(vals) < 2 {
				return fmt.Errorf("machine: rank %d: malformed join welcome (%d values)", myPhys, len(vals))
			}
			epoch, members := vals[0], vals[1:]
			myView := -1
			for i, p := range members {
				if p == myPhys {
					myView = i
				}
			}
			if myView < 0 {
				return fmt.Errorf("machine: rank %d: join welcome for epoch %d does not include me (members %v)", myPhys, epoch, members)
			}
			c.epoch = epoch
			c.phys = members
			c.rank = myView
			c.reserved = false
			c.comm = msg.NewComm(msg.NewView(ep, epoch, members, m.epochCheck(members)))
			c.comm.SetConfig(m.commCfg)
			c.collSeq = 0
			if tr != nil {
				tr.Instant(myPhys, trace.CatPhase, fmt.Sprintf("epoch:%d", epoch), myView, int64(len(members)))
			}
			// The members are inside the transition's confirmation
			// barrier; joining it completes the admission.
			if err := c.comm.Barrier(); err != nil {
				return fmt.Errorf("machine: join: epoch %d confirmation: %w", epoch, err)
			}
			return nil
		case isClosedErr(err):
			// An SPMD abort tore the transport down before anyone
			// admitted us.
			return fmt.Errorf("machine: rank %d: %w", myPhys, ErrNeverJoined)
		}
		if m.det.snapshotDead()[myPhys] {
			// Fail-stop contract: a joiner the detector declared dead
			// will never be admitted.
			return fmt.Errorf("machine: physical rank %d: %w", myPhys, ErrExcluded)
		}
		select {
		case <-m.run.stop:
			// Every engaged rank has returned: the run is over and no
			// admission can happen anymore.
			m.joins.remove([]int{myPhys})
			return fmt.Errorf("machine: rank %d: %w", myPhys, ErrNeverJoined)
		default:
		}
	}
}

// Admit transitions the current epoch's members to epoch e+1 that
// additionally contains every reserved rank registered in AwaitJoin —
// the scale-out mirror of Regroup.  It is collective over the member
// set (use PollJoin to take the admit decision at the same point on
// every rank) and tolerates deaths discovered during the agreement: a
// member that dies mid-admission is excluded by the same transition.
// With no joiner registered Admit returns an error and the epoch-e view
// stays fully operational.
func (c *Ctx) Admit() error {
	if c.reserved {
		return errors.New("machine: Admit on a reserved rank (call AwaitJoin)")
	}
	return c.transition(transAdmit)
}

// PollJoin reports, identically on every member of the current epoch,
// whether at least one reserved rank is waiting to join.  The answer is
// agreed over a small collective so every member takes the same
// grow/hold decision at the same iteration boundary — ranks polling the
// shared registry directly could diverge by a registration race, with
// half the members entering Admit and the other half proceeding.
func (c *Ctx) PollJoin() (bool, error) {
	mine := 0
	if len(c.m.pendingJoiners(c.phys)) > 0 {
		mine = 1
	}
	out, err := c.comm.AllreduceInts([]int{mine}, msg.MaxInt)
	if err != nil {
		return false, err
	}
	return out[0] > 0, nil
}
