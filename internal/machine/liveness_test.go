package machine

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/msg"
)

// hbCfg is a liveness/retry configuration tuned so tests detect a dead
// rank well before a blocked collective exhausts its retries.
func hbCfg() (LivenessConfig, msg.CommConfig) {
	return LivenessConfig{Interval: 5 * time.Millisecond, Window: 75 * time.Millisecond},
		msg.CommConfig{Timeout: 150 * time.Millisecond, Retries: 2, MaxTimeout: 250 * time.Millisecond}
}

// TestLivenessAllAlive: a healthy run declares no one dead.
func TestLivenessAllAlive(t *testing.T) {
	lc, cc := hbCfg()
	m := New(4, WithLiveness(lc), WithCommConfig(cc))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		time.Sleep(3 * lc.Window) // give heartbeats several windows
		return ctx.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Survivors(); len(s) != 4 {
		t.Fatalf("survivors = %v, want all 4", s)
	}
}

// TestLivenessDetectsSilentRank: a rank whose every outbound message is
// dropped (the permanent-kill fault) must be declared dead by the
// detector, the blocked collective must abort via the retry budget, and
// Survivors must name exactly the other ranks.
func TestLivenessDetectsSilentRank(t *testing.T) {
	plan, err := msg.ParseFaultPlan("drop,rank=2")
	if err != nil {
		t.Fatal(err)
	}
	lc, cc := hbCfg()
	ft := msg.NewFaultTransport(msg.NewChanTransport(4), plan)
	m := New(4, WithTransport(ft), WithLiveness(lc), WithCommConfig(cc))
	defer m.Close()
	err = m.Run(func(ctx *Ctx) error {
		// Rank 2's sends all vanish, so this collective cannot complete;
		// the deadline/retry policy turns the hang into an error.
		return ctx.Barrier()
	})
	if err == nil {
		t.Fatal("barrier with a dead rank should fail")
	}
	s := m.Survivors()
	if len(s) != 3 || s[0] != 0 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("survivors = %v, want [0 1 3]", s)
	}
}

// TestSurvivorsNilWithoutLiveness: no detector, no claim.
func TestSurvivorsNilWithoutLiveness(t *testing.T) {
	m := New(2)
	defer m.Close()
	if err := m.Run(func(ctx *Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if s := m.Survivors(); s != nil {
		t.Fatalf("survivors = %v, want nil", s)
	}
}

// settleGoroutines polls until the goroutine count drops back to at most
// base, or the deadline passes, and returns the final count.  Runtime
// bookkeeping goroutines wind down asynchronously after transport close,
// so a single instantaneous reading would be flaky.
func settleGoroutines(base int, d time.Duration) int {
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestErroringRunLeaksNoGoroutines: a Run that aborts — body error on
// one rank, peers unwound through the closed transport — must join every
// rank goroutine, heartbeat sender/monitor, and transport reader before
// returning.  This pins down the contract recovery relies on: after a
// failed run the process can build a fresh, smaller machine without
// inheriting stuck goroutines from the dead one.
func TestErroringRunLeaksNoGoroutines(t *testing.T) {
	lc, cc := hbCfg()
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		m := New(4, WithLiveness(lc), WithCommConfig(cc))
		err := m.Run(func(ctx *Ctx) error {
			if ctx.Rank() == 1 {
				return errors.New("injected body failure")
			}
			return ctx.Barrier()
		})
		if err == nil {
			t.Fatal("run should report the injected failure")
		}
		m.Close()
	}
	// Allow scheduling slack beyond the baseline, but far fewer than one
	// leaked rank set (3 runs × 4 ranks × ≥2 goroutines each).
	if n := settleGoroutines(base+2, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines: %d before, %d after erroring runs (leak)", base, n)
	}
}

// TestPanickingRunLeaksNoGoroutines: same contract when the body panics
// while peers sit in a collective.
func TestPanickingRunLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	m := New(4)
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Rank() == 2 {
			panic("injected panic")
		}
		return ctx.Barrier()
	})
	if err == nil {
		t.Fatal("run should report the panic")
	}
	m.Close()
	if n := settleGoroutines(base+2, 2*time.Second); n > base+2 {
		t.Fatalf("goroutines: %d before, %d after panicking run (leak)", base, n)
	}
}
