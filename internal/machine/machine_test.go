package machine

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/msg"
)

func TestRunSPMD(t *testing.T) {
	m := New(4)
	defer m.Close()
	var ran atomic.Int64
	err := m.Run(func(ctx *Ctx) error {
		if ctx.NP() != 4 {
			t.Errorf("NP = %d", ctx.NP())
		}
		ran.Add(1)
		ctx.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("ran on %d processors", ran.Load())
	}
}

func TestRunRecoversPanic(t *testing.T) {
	m := New(2)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectiveOnce(t *testing.T) {
	m := New(4)
	defer m.Close()
	var created atomic.Int64
	var mu sync.Mutex
	seen := map[any]bool{}
	err := m.Run(func(ctx *Ctx) error {
		v := ctx.CollectiveOnce(func() any {
			created.Add(1)
			return &struct{ x int }{x: 7}
		})
		mu.Lock()
		seen[v] = true
		mu.Unlock()
		// a second collective site gets a distinct object
		v2 := ctx.CollectiveOnce(func() any { return new(int) })
		if v2 == v {
			t.Error("distinct collective sites shared an object")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.Load() != 1 {
		t.Fatalf("constructor ran %d times", created.Load())
	}
	if len(seen) != 1 {
		t.Fatalf("processors saw %d distinct objects", len(seen))
	}
}

func TestMachineOverTCP(t *testing.T) {
	tcp, err := msg.NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	m := New(3, WithTransport(tcp))
	defer m.Close()
	if err := m.Run(func(ctx *Ctx) error {
		out, err := ctx.Comm().AllreduceInts([]int{ctx.Rank()}, msg.SumInt)
		if err != nil {
			return err
		}
		if out[0] != 3 {
			t.Errorf("sum = %d", out[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestChargeWithCostModel(t *testing.T) {
	cm := msg.NewCostModel(2, 1e-4, 1e-9)
	m := New(2, WithCostModel(cm))
	defer m.Close()
	if err := m.Run(func(ctx *Ctx) error {
		ctx.Charge(float64(ctx.Rank()+1) * 0.5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cm.Clock(0) != 0.5 || cm.Clock(1) != 1.0 {
		t.Fatalf("clocks = %g, %g", cm.Clock(0), cm.Clock(1))
	}
	if m.Cost() != cm {
		t.Fatal("Cost() should return the attached model")
	}
}

func TestProcArrayColumnMajor(t *testing.T) {
	m := New(4)
	defer m.Close()
	r := m.Procs("R", [2]int{1, 2}, [2]int{1, 2})
	if r.Size() != 4 || r.NDims() != 2 || r.Extent(0) != 2 {
		t.Fatalf("shape wrong: size=%d", r.Size())
	}
	// Column-major: (1,1)=0 (2,1)=1 (1,2)=2 (2,2)=3
	if r.RankOf([]int{2, 1}) != 1 || r.RankOf([]int{1, 2}) != 2 {
		t.Fatalf("rank mapping wrong: %d %d", r.RankOf([]int{2, 1}), r.RankOf([]int{1, 2}))
	}
	c, ok := r.CoordsOf(3)
	if !ok || c[0] != 2 || c[1] != 2 {
		t.Fatalf("coords of 3 = %v", c)
	}
	if _, ok := r.CoordsOf(4); ok {
		t.Fatal("rank 4 should not exist")
	}
}

func TestProcArraySmallerThanMachine(t *testing.T) {
	m := New(8)
	defer m.Close()
	r := m.ProcsDim("R", 3)
	if r.Size() != 3 {
		t.Fatal("size")
	}
	if len(r.Ranks()) != 3 || r.Ranks()[2] != 2 {
		t.Fatalf("ranks = %v", r.Ranks())
	}
}

func TestProcArrayRedeclare(t *testing.T) {
	m := New(4)
	defer m.Close()
	a := m.ProcsDim("R", 4)
	b := m.ProcsDim("R", 4)
	if a != b {
		t.Fatal("same declaration should return same array")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting redeclaration should panic")
		}
	}()
	m.ProcsDim("R", 2, 2)
}

func TestProcArrayTooLarge(t *testing.T) {
	m := New(2)
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized processor array should panic")
		}
	}()
	m.ProcsDim("R", 3)
}

func TestProcSection(t *testing.T) {
	m := New(6)
	defer m.Close()
	r := m.Procs("R", [2]int{1, 2}, [2]int{1, 3})    // 2x3
	s := r.Section([3]int{1, 2, 1}, [3]int{2, 2, 1}) // column 2, both rows: ranks (1,2)=2,(2,2)=3
	if s.Size() != 2 || s.NDims() != 2 {
		t.Fatalf("section size %d", s.Size())
	}
	ranks := s.Ranks()
	if len(ranks) != 2 || ranks[0] != 2 || ranks[1] != 3 {
		t.Fatalf("ranks = %v", ranks)
	}
	if got := s.RankOf([]int{1, 0}); got != 3 {
		t.Fatalf("RankOf dense (1,0) = %d want 3", got)
	}
	if c, ok := s.CoordsOf(3); !ok || c[0] != 1 || c[1] != 0 {
		t.Fatalf("CoordsOf(3) = %v %v", c, ok)
	}
	if _, ok := s.CoordsOf(0); ok {
		t.Fatal("rank 0 not in section")
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if !s.Equal(r.Section([3]int{1, 2, 1}, [3]int{2, 2, 1})) {
		t.Fatal("identical sections should be equal")
	}
	if s.Equal(r.Whole()) {
		t.Fatal("section != whole")
	}
}

func TestProcSectionStrided(t *testing.T) {
	m := New(8)
	defer m.Close()
	r := m.ProcsDim("L", 8)
	s := r.Section([3]int{1, 8, 2}) // procs 1,3,5,7 -> ranks 0,2,4,6
	if s.Size() != 4 {
		t.Fatal("size")
	}
	want := []int{0, 2, 4, 6}
	for i, w := range want {
		if s.Ranks()[i] != w {
			t.Fatalf("ranks = %v", s.Ranks())
		}
	}
	if s.Contains(1) {
		t.Fatal("rank 1 should be outside strided section")
	}
	if c, ok := s.CoordsOf(4); !ok || c[0] != 2 {
		t.Fatalf("coords of 4 = %v", c)
	}
}

func TestWholeSection(t *testing.T) {
	m := New(4)
	defer m.Close()
	r := m.Procs("R", [2]int{1, 2}, [2]int{1, 2})
	w := r.Whole()
	if w.Size() != 4 || !w.Contains(0) || !w.Contains(3) {
		t.Fatal("whole section wrong")
	}
	if w.String() == "" {
		t.Fatal("string empty")
	}
}

// TestBodyErrorUnblocksPeersInBarrier: one rank's body returns an error
// while the others sit in a barrier.  The runtime must close the transport
// so the barrier returns an error instead of deadlocking, and Run must
// surface the *originating* body error, naming the failing rank.
func TestBodyErrorUnblocksPeersInBarrier(t *testing.T) {
	m := New(4)
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		if ctx.Rank() == 2 {
			return errors.New("disk on fire")
		}
		if err := ctx.Barrier(); err == nil {
			t.Errorf("rank %d: barrier should fail after rank 2 errored", ctx.Rank())
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run should surface the body error")
	}
	for _, frag := range []string{"machine: rank 2", "disk on fire"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("err %q missing %q", err, frag)
		}
	}
	if strings.Contains(err.Error(), "panic") {
		t.Errorf("error propagation must not involve a panic: %q", err)
	}
}

// TestBarrierErrorOnClosedTransport: Ctx.Barrier reports transport
// shutdown as an error value rather than panicking.
func TestBarrierErrorOnClosedTransport(t *testing.T) {
	tr := msg.NewChanTransport(2)
	m := New(2, WithTransport(tr))
	defer m.Close()
	err := m.Run(func(ctx *Ctx) error {
		ctx.Barrier()
		if ctx.Rank() == 0 {
			tr.Close()
		}
		err := ctx.Barrier()
		if err == nil {
			t.Errorf("rank %d: barrier on closed transport should fail", ctx.Rank())
		}
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "machine: rank") {
		t.Fatalf("Run err = %v, want a rank-naming error", err)
	}
}

// TestCommConfigInstalled: WithCommConfig must reach every rank's Comm.
func TestCommConfigInstalled(t *testing.T) {
	cc := msg.CommConfig{Timeout: 123 * time.Millisecond, Retries: 5, Backoff: time.Millisecond}
	m := New(2, WithCommConfig(cc))
	defer m.Close()
	if err := m.Run(func(ctx *Ctx) error {
		if got := ctx.Comm().Config(); got != cc {
			t.Errorf("rank %d: comm config = %+v, want %+v", ctx.Rank(), got, cc)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
