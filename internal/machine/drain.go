package machine

import (
	"errors"
	"fmt"
)

// This file is the *voluntary* scale-IN half of the membership layer —
// the inverse of join.go's scale-OUT.  Where a Regroup shrinks an epoch
// because a member died, a *drain* shrinks it because the members
// decided a rank should leave: a persistent straggler the health scorer
// flagged, a node the operator wants back.  The drained rank is alive
// the whole time — it participates in the agreement (and in whatever
// collective checkpoint/handoff the application runs beforehand), then
// exits non-fatally with ErrDrained while the survivors install the
// shrunken view.

// ErrDrained is returned by Ctx.Drain on the rank the membership agreed
// to drain: it has been handed off cleanly and must now exit by
// returning this error from the SPMD body.  It wraps ErrExcluded, so
// Machine.Run treats the drained rank as an expected departure — not an
// SPMD abort — exactly like a rank voted out by a Regroup.
var ErrDrained = fmt.Errorf("machine: rank voluntarily drained from membership: %w", ErrExcluded)

// pendingDrains returns the registered drain candidates that an epoch
// whose member set is phys could actually release: current members, not
// already declared dead (a dead rank is the Regroup path's business).
func (m *Machine) pendingDrains(phys []int) []int {
	if m.drains == nil {
		return nil
	}
	isMember := make(map[int]bool, len(phys))
	for _, p := range phys {
		isMember[p] = true
	}
	dead := m.det.snapshotDead()
	var out []int
	for _, p := range m.drains.snapshot() {
		if isMember[p] && !dead[p] {
			out = append(out, p)
		}
	}
	return out
}

// PendingDrains returns the physical ranks currently registered for a
// voluntary drain (nil without WithLiveness).
func (m *Machine) PendingDrains() []int {
	if m.drains == nil {
		return nil
	}
	return m.drains.snapshot()
}

// Drain transitions the current epoch's members to epoch e+1 *without*
// the member at viewRank: the voluntary scale-IN mirror of Admit.  It
// is collective over the member set — every member (including the one
// being drained) calls Drain with the same view rank at the same point,
// typically right after a collective checkpoint so the survivors can
// restore the drained rank's data onto the shrunken view.
//
// The transition runs over the same combined-mask agreement as Regroup
// and Admit, so a drain racing a concurrent real death (or a pending
// join) resolves in ONE epoch transition: the dead rank is excluded,
// the joiner admitted, and the drained rank released, all by the same
// decision round.
//
// On the drained rank Drain returns ErrDrained, which the body must
// return; Machine.Run treats it as a non-fatal departure.  On the
// survivors Drain returns nil with the epoch-(e+1) view installed.
func (c *Ctx) Drain(viewRank int) error {
	m := c.m
	if c.reserved {
		return errors.New("machine: Drain on a reserved rank (it has no membership to leave)")
	}
	if m.det == nil {
		return errors.New("machine: Drain requires WithLiveness (drain transitions run over the liveness/epoch machinery)")
	}
	if viewRank < 0 || viewRank >= len(c.phys) {
		return fmt.Errorf("machine: Drain(%d): no such view rank in epoch %d (NP=%d)", viewRank, c.epoch, len(c.phys))
	}
	if len(c.phys) <= 1 {
		return errors.New("machine: Drain would empty the membership")
	}
	m.drains.add(c.phys[viewRank])
	return c.transition(transDrain)
}
