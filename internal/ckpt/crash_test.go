package ckpt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/darray"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/pario"
)

// newMachine builds an np-rank machine over the named transport
// ("chan" or "tcp").
func newMachine(t *testing.T, np int, transport string) *machine.Machine {
	t.Helper()
	if transport == "tcp" {
		tcp, err := msg.NewTCPTransport(np)
		if err != nil {
			t.Fatal(err)
		}
		return machine.New(np, machine.WithTransport(tcp))
	}
	return machine.New(np)
}

// saveOpts runs an SPMD save of one freshly filled block-distributed
// array under the given I/O options.
func saveOpts(t *testing.T, np int, transport, dir string, opts Options, val func(index.Point) float64) error {
	t.Helper()
	m := newMachine(t, np, transport)
	defer m.Close()
	return m.Run(func(ctx *machine.Ctx) error {
		dom := domFor("block")
		a := darray.New(ctx, "A", dom, distFor(ctx, "block", dom, np))
		a.FillFunc(ctx, val)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		_, err := SaveOpts(ctx, dir, []*darray.Array{a}, nil, opts)
		return err
	})
}

// restoreOpts restores onto np ranks over the named transport, verifies
// every element against val bit-exactly, and returns the summed per-rank
// repair count.
func restoreOpts(t *testing.T, np int, transport, dir string, opts Options, val func(index.Point) float64) int {
	t.Helper()
	m := newMachine(t, np, transport)
	defer m.Close()
	repairs := make([]int, np)
	err := m.Run(func(ctx *machine.Ctx) error {
		dom := domFor("block")
		a := darray.NewUndistributed(ctx, "A", dom)
		res, err := RestoreOpts(ctx, dir, []*darray.Array{a}, opts)
		if err != nil {
			return err
		}
		repairs[ctx.Rank()] = res.Repaired
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			dom.WholeSection().ForEach(func(p index.Point) bool {
				if want := val(p); got[dom.Offset(p)] != want {
					t.Errorf("[%v] = %v, want %v (bit-exact)", p, got[dom.Offset(p)], want)
					return false
				}
				return true
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restore on %d %s ranks: %v", np, transport, err)
	}
	total := 0
	for _, r := range repairs {
		total += r
	}
	return total
}

func noStagingLeft(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("stale staging dir %s survived the next Save", e.Name())
		}
	}
}

// TestSaveAbortMatrix kills a Save at every distinct stage of its
// write path via persistent injected faults — staging mkdir, stripe
// write, parity write, manifest write, commit rename — and checks the
// crash-safety contract each time: the failure surfaces on every rank,
// the previously committed epoch is untouched and restores bit-exact,
// and the next clean Save garbage-collects the crash's staging debris
// and commits past it.
func TestSaveAbortMatrix(t *testing.T) {
	stages := []struct {
		name string
		plan string
	}{
		{"mkdir-staging", "eio,op=mkdir,path=.tmp"},
		{"stripe-write", "eio,op=write,path=stripe-"},
		{"parity-write", "eio,op=write,path=parity"},
		{"manifest-write", "eio,op=write,path=manifest"},
		{"commit-rename", "eio,op=rename,path=.tmp"},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Servers: 2, Redundancy: pario.RedundancyParity}
			if err := saveOpts(t, 2, "chan", dir, opts, fill); err != nil {
				t.Fatalf("clean save: %v", err)
			}

			plan, err := pario.ParseFaultPlan(st.plan)
			if err != nil {
				t.Fatal(err)
			}
			ff := pario.NewFaultFS(pario.OS{}, plan)
			faulty := opts
			faulty.FS = ff.Rank
			if err := saveOpts(t, 2, "chan", dir, faulty, fill); err == nil {
				t.Fatalf("save with %s fault reported success", st.name)
			}

			// The aborted epoch is invisible; epoch 0 restores bit-exact.
			if epoch, _, err := LatestEpoch(dir); err != nil || epoch != 0 {
				t.Fatalf("LatestEpoch after abort = %d, %v; want 0", epoch, err)
			}
			restoreOpts(t, 2, "chan", dir, opts, fill)

			// The next clean Save sweeps the debris and commits.
			if err := saveOpts(t, 2, "chan", dir, opts, fill); err != nil {
				t.Fatalf("save after abort: %v", err)
			}
			if epoch, _, err := LatestEpoch(dir); err != nil || epoch != 1 {
				t.Fatalf("post-abort save epoch = %d, %v; want 1", epoch, err)
			}
			noStagingLeft(t, dir)
		})
	}
}

// TestDamageRestoreMatrix is the acceptance matrix: with redundancy,
// deleting, truncating or bit-rotting any single file of the newest
// epoch still restores bit-exact (MaxErr == 0) on both transports, with
// transient injected read faults healed by the retry policy, and the
// damaged file is repaired in place.
func TestDamageRestoreMatrix(t *testing.T) {
	type damage struct {
		name       string
		redundancy string
		file       func(man *Manifest) string
		apply      func(t *testing.T, path string)
		repairs    bool // a data stripe was rebuilt and healed
	}
	remove := func(t *testing.T, path string) {
		t.Helper()
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	truncate := func(t *testing.T, path string) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rot := func(t *testing.T, path string) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stripe := func(i int) func(*Manifest) string {
		return func(man *Manifest) string { return man.Stripes[i].Name }
	}
	cases := []damage{
		{"lost-stripe", pario.RedundancyParity, stripe(1), remove, true},
		{"torn-stripe", pario.RedundancyParity, stripe(0), truncate, true},
		{"bitrot-stripe", pario.RedundancyParity, stripe(2), rot, true},
		{"lost-parity", pario.RedundancyParity, func(man *Manifest) string { return man.Parity.Name }, remove, false},
		{"lost-stripe-replica-mode", pario.RedundancyReplica, stripe(1), remove, true},
		{"rotten-replica", pario.RedundancyReplica,
			func(man *Manifest) string { return pario.ReplicaName(man.Stripes[0].Name) }, rot, false},
	}
	for _, transport := range []string{"chan", "tcp"} {
		for _, tc := range cases {
			t.Run(transport+"/"+tc.name, func(t *testing.T) {
				dir := t.TempDir()
				opts := Options{Servers: 3, Redundancy: tc.redundancy}
				if err := saveOpts(t, 4, transport, dir, opts, fill); err != nil {
					t.Fatal(err)
				}
				epoch, man, err := LatestEpoch(dir)
				if err != nil || epoch != 0 {
					t.Fatalf("LatestEpoch = %d, %v", epoch, err)
				}
				victim := filepath.Join(EpochDir(dir, epoch), tc.file(man))
				tc.apply(t, victim)

				// Restore under a transient injected read fault: the first
				// stripe read on every rank fails once and heals on retry.
				plan, err := pario.ParseFaultPlan("eio,op=read,path=stripe-,count=1")
				if err != nil {
					t.Fatal(err)
				}
				degraded := opts
				degraded.FS = pario.NewFaultFS(pario.OS{}, plan).Rank
				degraded.IO = pario.Config{Timeout: 2 * time.Second, Retries: 2, Backoff: time.Millisecond}
				repairs := restoreOpts(t, 4, transport, dir, degraded, fill)
				if tc.repairs && repairs == 0 {
					t.Error("no rank reported a stripe reconstruction")
				}

				// Self-healing: the restore repaired damaged data stripes in
				// place, so a plain Verify of the epoch sees them intact.
				set := man.stripeSet(EpochDir(dir, epoch))
				h := set.Verify(pario.OS{}, pario.Config{}, nil, 0)
				if !h.Recoverable || len(h.BadStripes) > 0 {
					t.Errorf("epoch not healed after restore: %+v", h)
				}
			})
		}
	}
}

// TestRetention: -ckpt-keep prunes old epochs after a successful commit;
// keep <= 0 keeps everything.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Servers: 2, Redundancy: pario.RedundancyParity, Keep: 2}
	for i := 0; i < 4; i++ {
		if err := saveOpts(t, 2, "chan", dir, opts, fill); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := epochsIn(pario.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 3 || epochs[1] != 2 {
		t.Fatalf("retained epochs = %v, want [3 2]", epochs)
	}
	restoreOpts(t, 2, "chan", dir, Options{}, fill)

	// Keep-all (the default): nothing pruned.
	dir = t.TempDir()
	opts.Keep = 0
	for i := 0; i < 3; i++ {
		if err := saveOpts(t, 2, "chan", dir, opts, fill); err != nil {
			t.Fatal(err)
		}
	}
	if epochs, _ = epochsIn(pario.OS{}, dir); len(epochs) != 3 {
		t.Fatalf("keep-all retained %v", epochs)
	}
}

// TestEpochFallbackRestoresOlder: when the newest epoch is damaged
// beyond its redundancy, LatestEpoch and Restore fall back to the newest
// verifiably complete one — and restore its values, not the damaged
// epoch's.
func TestEpochFallbackRestoresOlder(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Servers: 2, Redundancy: pario.RedundancyNone}
	valA := func(p index.Point) float64 { return 1000 + fill(p) }
	valB := func(p index.Point) float64 { return 2000 + fill(p) }
	if err := saveOpts(t, 2, "chan", dir, opts, valA); err != nil {
		t.Fatal(err)
	}
	if err := saveOpts(t, 2, "chan", dir, opts, valB); err != nil {
		t.Fatal(err)
	}
	if epoch, _, err := LatestEpoch(dir); err != nil || epoch != 1 {
		t.Fatalf("LatestEpoch = %d, %v", epoch, err)
	}
	// No redundancy: losing one stripe makes epoch 1 unusable.
	if err := os.Remove(filepath.Join(EpochDir(dir, 1), stripeFileName(0))); err != nil {
		t.Fatal(err)
	}
	epoch, man, err := LatestEpoch(dir)
	if err != nil || epoch != 0 || man == nil {
		t.Fatalf("LatestEpoch after damage = %d, %v, %v; want 0", epoch, man, err)
	}
	if restoreOpts(t, 2, "chan", dir, opts, valA) != 0 {
		t.Error("fallback restore reported repairs with no redundancy")
	}
}

// writeV1Epoch hand-crafts a committed format-1 epoch (one flat file per
// rank, BLOCK over two ranks) the way the pre-striping code wrote it.
func writeV1Epoch(t *testing.T, dir string, dom index.Domain, val func(index.Point) float64) {
	t.Helper()
	epochDir := filepath.Join(dir, epochDirName(0))
	if err := os.MkdirAll(epochDir, 0o755); err != nil {
		t.Fatal(err)
	}
	man := Manifest{
		Version: VersionV1, Epoch: 0, NP: 2,
		Arrays: []ArrayMeta{{
			Name: "A",
			Dist: DistMeta{Dims: []DimMeta{{Kind: "BLOCK"}}, TargetExtents: []int{2}},
			Lo:   []int{dom.Lo[0]}, Hi: []int{dom.Hi[0]},
		}},
	}
	n := dom.Extent(0)
	half := (n + 1) / 2
	bounds := [][2]int{{dom.Lo[0], dom.Lo[0] + half - 1}, {dom.Lo[0] + half, dom.Hi[0]}}
	for r, b := range bounds {
		buf := appendU32(nil, fileMagic)
		buf = appendU32(buf, VersionV1)
		buf = appendU32(buf, 0) // epoch
		buf = appendU32(buf, uint32(r))
		buf = appendU32(buf, 1) // narr
		buf = appendU32(buf, uint32(b[1]-b[0]+1))
		for i := b[0]; i <= b[1]; i++ {
			buf = msg.AppendFloat64s(buf, []float64{val(index.Point{i})})
		}
		name := rankFileName(r)
		if err := os.WriteFile(filepath.Join(epochDir, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		man.Files = append(man.Files, FileMeta{Rank: r, Name: name, Size: int64(len(buf)), CRC: crc32IEEE(buf)})
	}
	b, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath(epochDir), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1Compat: a format-1 checkpoint written before the striped layout
// still restores — on the same rank count (the bit-identical fast path)
// and across a resize — and Scrub verifies it without inventing repairs.
func TestV1Compat(t *testing.T) {
	dir := t.TempDir()
	dom := domFor("block")
	writeV1Epoch(t, dir, dom, fill)

	epoch, man, err := LatestEpoch(dir)
	if err != nil || epoch != 0 || man.Version != VersionV1 {
		t.Fatalf("LatestEpoch = %d, %+v, %v", epoch, man, err)
	}
	restoreOpts(t, 2, "chan", dir, Options{}, fill)
	restoreOpts(t, 3, "chan", dir, Options{}, fill)

	sum, err := Scrub(dir, Options{})
	if err != nil || sum.Epochs != 1 || sum.Checked != 2 || len(sum.Repaired) != 0 || len(sum.Unrecoverable) != 0 {
		t.Fatalf("Scrub(v1) = %+v, %v", sum, err)
	}

	// Damaged v1 files have no redundancy: Scrub reports, restore falls
	// through to an error rather than serving rotten bytes.
	rotPath := filepath.Join(EpochDir(dir, 0), rankFileName(1))
	data, _ := os.ReadFile(rotPath)
	data[len(data)-1] ^= 0xff
	os.WriteFile(rotPath, data, 0o644)
	sum, err = Scrub(dir, Options{})
	if err != nil || len(sum.Unrecoverable) != 1 {
		t.Fatalf("Scrub(rotten v1) = %+v, %v", sum, err)
	}
	if epoch, _, err := LatestEpoch(dir); err != nil || epoch != -1 {
		t.Fatalf("rotten v1 epoch still visible: %d, %v", epoch, err)
	}
}

// TestScrubHealsCommittedEpochs: Scrub over a directory of striped
// epochs repairs rot in every epoch it can and leaves them all verifying
// clean.
func TestScrubHealsCommittedEpochs(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Servers: 2, Redundancy: pario.RedundancyParity}
	for i := 0; i < 2; i++ {
		if err := saveOpts(t, 2, "chan", dir, opts, fill); err != nil {
			t.Fatal(err)
		}
	}
	for epoch := 0; epoch < 2; epoch++ {
		path := filepath.Join(EpochDir(dir, epoch), stripeFileName(epoch%2))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0x08
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	met := &pario.Metrics{}
	sum, err := Scrub(dir, Options{Servers: 2, Redundancy: pario.RedundancyParity, IO: pario.Config{Metrics: met}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Epochs != 2 || len(sum.Repaired) != 2 || len(sum.Unrecoverable) != 0 {
		t.Fatalf("Scrub = %+v", sum)
	}
	if met.Repairs.Load() != 2 {
		t.Fatalf("repair metric = %d, want 2", met.Repairs.Load())
	}
	for epoch := 0; epoch < 2; epoch++ {
		_, man, err := LatestEpoch(dir)
		if err != nil || man == nil {
			t.Fatal(err)
		}
	}
	restoreOpts(t, 2, "chan", dir, opts, fill)
}
