package ckpt

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// fill gives every point a value with a full-width float64 mantissa, so
// bit-identity failures cannot hide behind round numbers.
func fill(p index.Point) float64 {
	v := 1.0
	for k, i := range p {
		v += math.Sin(float64(i*(k+3))) * math.Exp(float64(k))
	}
	return v
}

// distFor builds the distribution named by kind for the given domain on
// the machine behind ctx, over np processors arranged per kind.
func distFor(ctx *machine.Ctx, kind string, dom index.Domain, np int) *dist.Distribution {
	m := ctx.Machine()
	switch kind {
	case "block":
		tg := m.ProcsDim("$T"+kind, np).Whole()
		return dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
	case "cyclic":
		tg := m.ProcsDim("$T"+kind, np).Whole()
		return dist.MustNew(dist.NewType(dist.CyclicDim(3)), dom, tg)
	case "bblock":
		tg := m.ProcsDim("$T"+kind, np).Whole()
		// General block: explicit segment upper bounds, one per processor.
		n := dom.Extent(0)
		bounds := make([]int, np)
		used := 0
		for i := 0; i < np; i++ {
			seg := (n - used) / (np - i)
			if i%2 == 0 && seg > 1 {
				seg-- // deliberately uneven
			}
			used += seg
			bounds[i] = dom.Lo[0] + used - 1
		}
		bounds[np-1] = dom.Hi[0]
		return dist.MustNew(dist.NewType(dist.BBlockDim(bounds...)), dom, tg)
	case "block2d":
		ext := balancedExtents(np, 2)
		tg := m.ProcsDim("$T"+kind, ext...).Whole()
		return dist.MustNew(dist.NewType(dist.BlockDim(), dist.BlockDim()), dom, tg)
	case "replicated":
		// Distribute dim 0 over the first target dimension; the second
		// target dimension replicates every block.
		ext := balancedExtents(np, 2)
		tg := m.ProcsDim("$T"+kind, ext...).Whole()
		return dist.MustNew(dist.NewType(dist.BlockDim(), dist.ElidedDim()), dom, tg)
	}
	panic("unknown kind " + kind)
}

func domFor(kind string) index.Domain {
	switch kind {
	case "block2d", "replicated":
		return index.Dim(13, 9)
	default:
		return index.Dim(29)
	}
}

// saveOn runs an SPMD save of one freshly filled array and returns the
// committed epoch.
func saveOn(t *testing.T, np int, dir, kind string, meta map[string]string) {
	t.Helper()
	m := machine.New(np)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		dom := domFor(kind)
		a := darray.New(ctx, "A", dom, distFor(ctx, kind, dom, np))
		a.FillFunc(ctx, fill)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		_, err := Save(ctx, dir, []*darray.Array{a}, meta)
		return err
	})
	if err != nil {
		t.Fatalf("save on %d ranks: %v", np, err)
	}
}

// restoreOn restores onto np ranks and verifies every element against
// fill; wantResized asserts the shrink path was (or was not) taken.
func restoreOn(t *testing.T, np int, dir, kind string, wantResized bool) {
	t.Helper()
	m := machine.New(np)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		dom := domFor(kind)
		a := darray.NewUndistributed(ctx, "A", dom)
		res, err := Restore(ctx, dir, []*darray.Array{a})
		if err != nil {
			return err
		}
		if res.Resized != wantResized {
			t.Errorf("Resized = %v, want %v", res.Resized, wantResized)
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			dom.WholeSection().ForEach(func(p index.Point) bool {
				want := fill(p)
				if g := got[dom.Offset(p)]; g != want {
					t.Errorf("kind %s np %d: [%v] = %v, want %v (bit-exact)", kind, np, p, g, want)
					return false
				}
				return true
			})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("restore on %d ranks: %v", np, err)
	}
}

// TestRoundTripAllKinds checkpoints every distribution kind on 4 ranks
// and restores it (a) on the same 4 ranks — which must be the
// bit-identical fast path — and (b) on fewer ranks, exercising elastic
// shrink-recovery with grid intersection.
func TestRoundTripAllKinds(t *testing.T) {
	for _, kind := range []string{"block", "cyclic", "bblock", "block2d", "replicated"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			saveOn(t, 4, dir, kind, nil)
			restoreOn(t, 4, dir, kind, false)
			for _, np := range []int{3, 2, 1} {
				restoreOn(t, np, dir, kind, true)
			}
		})
	}
}

// TestRestoreOntoMoreRanks: expand-recovery — a checkpoint saved on
// fewer ranks re-factors onto the larger machine, so every rank of the
// grown view owns a share of the data (rather than replaying the old
// arrangement and leaving the new ranks empty).
func TestRestoreOntoMoreRanks(t *testing.T) {
	for _, kind := range []string{"block", "cyclic", "bblock", "block2d"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			saveOn(t, 2, dir, kind, nil)
			restoreOn(t, 4, dir, kind, true)
		})
	}

	// The values survive bit-exactly (restoreOn checks); additionally the
	// re-factored distribution must put data on the grown ranks.
	dir := t.TempDir()
	saveOn(t, 2, dir, "block", nil)
	m := machine.New(4)
	defer m.Close()
	owned := make([]int, 4)
	err := m.Run(func(ctx *machine.Ctx) error {
		dom := domFor("block")
		a := darray.NewUndistributed(ctx, "A", dom)
		if _, err := Restore(ctx, dir, []*darray.Array{a}); err != nil {
			return err
		}
		owned[ctx.Rank()] = a.Local(ctx).Count()
		return ctx.Barrier()
	})
	if err != nil {
		t.Fatalf("restore on 4 ranks: %v", err)
	}
	for r, n := range owned {
		if n == 0 {
			t.Errorf("rank %d owns no data after expand-recovery (owned=%v)", r, owned)
		}
	}
}

// TestMetaRoundTrip: caller state stored at save time is visible to the
// recovering run.
func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	saveOn(t, 2, dir, "block", map[string]string{"iter": "7"})
	epoch, man, err := LatestEpoch(dir)
	if err != nil || epoch != 0 || man == nil {
		t.Fatalf("LatestEpoch = %d, %v, %v", epoch, man, err)
	}
	if it, ok := man.MetaInt("iter"); !ok || it != 7 {
		t.Fatalf("MetaInt(iter) = %d, %v", it, ok)
	}
	if man.NP != 2 || len(man.Arrays) != 1 {
		t.Fatalf("manifest shape: %+v", man)
	}
	if man.NS != 2 || len(man.Stripes) != 2 || man.Redundancy != "parity" || man.Parity == nil {
		t.Fatalf("stripe map: %+v", man)
	}
}

// TestEpochsAccumulate: repeated saves commit increasing epochs and
// restore picks the newest.
func TestEpochsAccumulate(t *testing.T) {
	dir := t.TempDir()
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		dom := index.Dim(10)
		a := darray.New(ctx, "A", dom, distFor(ctx, "block", dom, 2))
		for it := 0; it < 3; it++ {
			a.FillFunc(ctx, func(p index.Point) float64 { return float64(100*it + p[0]) })
			if err := ctx.Barrier(); err != nil {
				return err
			}
			epoch, err := Save(ctx, dir, []*darray.Array{a}, nil)
			if err != nil {
				return err
			}
			if epoch != it {
				t.Errorf("epoch = %d, want %d", epoch, it)
			}
		}
		// Overwrite, then restore: values must come from the last save.
		a.Fill(ctx, -1)
		if err := ctx.Barrier(); err != nil {
			return err
		}
		if _, err := Restore(ctx, dir, []*darray.Array{a}); err != nil {
			return err
		}
		got, err := a.GatherTo(ctx, 0)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			for i, v := range got {
				if want := float64(200 + i + 1); v != want {
					t.Errorf("got[%d] = %v, want %v", i, v, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCorruptFileRejected: damage beyond what redundancy can rebuild (a
// data stripe AND the parity stripe) must make the epoch invisible — a
// bit-rotted checkpoint is never silently restored.
func TestCorruptFileRejected(t *testing.T) {
	dir := t.TempDir()
	saveOn(t, 2, dir, "block", nil)
	for _, name := range []string{stripeFileName(1), parityFileName()} {
		path := filepath.Join(dir, epochDirName(0), name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if epoch, _, err := LatestEpoch(dir); err != nil || epoch != -1 {
		t.Fatalf("LatestEpoch sees unrecoverable epoch: %d, %v", epoch, err)
	}
	m := machine.New(1)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		a := darray.NewUndistributed(ctx, "A", domFor("block"))
		_, err := Restore(ctx, dir, []*darray.Array{a})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "no committed checkpoint") {
		t.Fatalf("corrupt restore err = %v, want no usable checkpoint", err)
	}
}

// TestInterruptedCheckpointInvisible: an epoch that never reached its
// commit rename (a stale .tmp directory, as left by a crash mid-write)
// must be invisible to LatestEpoch and Restore, and a later Save must
// commit past it.
func TestInterruptedCheckpointInvisible(t *testing.T) {
	dir := t.TempDir()
	saveOn(t, 2, dir, "block", nil) // epoch 0, committed

	// Simulate a crash: a fully written but never renamed epoch 1.
	staging := filepath.Join(dir, stagingDirName(1))
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{rankFileName(0), rankFileName(1), "manifest.json"} {
		if err := os.WriteFile(filepath.Join(staging, f), []byte("partial garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// And a committed-looking epoch whose manifest is damaged.
	damaged := filepath.Join(dir, epochDirName(2))
	if err := os.MkdirAll(damaged, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath(damaged), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	epoch, man, err := LatestEpoch(dir)
	if err != nil || epoch != 0 || man == nil {
		t.Fatalf("LatestEpoch sees interrupted state: %d, %v, %v", epoch, man, err)
	}
	restoreOn(t, 2, dir, "block", false) // still restores committed epoch 0

	// The next save must move past the junk, not resurrect it.
	saveOn(t, 2, dir, "block", nil)
	epoch, _, err = LatestEpoch(dir)
	if err != nil || epoch != 3 {
		t.Fatalf("post-junk save epoch = %d, %v; want 3", epoch, err)
	}
}

// TestEmptyDirRestoreFails: restoring from a directory with no committed
// checkpoint is an error on every rank, not a hang or a partial fill.
func TestEmptyDirRestoreFails(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		a := darray.NewUndistributed(ctx, "A", index.Dim(8))
		_, err := Restore(ctx, t.TempDir(), []*darray.Array{a})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "no committed checkpoint") {
		t.Fatalf("err = %v", err)
	}
}

// TestUndistributedSaveFails: checkpointing an array before association
// is a deterministic error.
func TestUndistributedSaveFails(t *testing.T) {
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		a := darray.NewUndistributed(ctx, "A", index.Dim(8))
		_, err := Save(ctx, t.TempDir(), []*darray.Array{a}, nil)
		if err == nil || !strings.Contains(err.Error(), "no distribution") {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDomainMismatchRejected: restoring into an array with different
// bounds must fail loudly.
func TestDomainMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	saveOn(t, 2, dir, "block", nil)
	m := machine.New(2)
	defer m.Close()
	err := m.Run(func(ctx *machine.Ctx) error {
		a := darray.NewUndistributed(ctx, "A", index.Dim(7)) // checkpoint has 29
		_, err := Restore(ctx, dir, []*darray.Array{a})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "domain") {
		t.Fatalf("err = %v", err)
	}
}

// TestBalancedExtents: the re-factorization helper must preserve the
// product and stay as square as it can.
func TestBalancedExtents(t *testing.T) {
	for _, tc := range []struct {
		np, nd int
		want   []int
	}{
		{4, 2, []int{2, 2}},
		{6, 2, []int{2, 3}},
		{3, 2, []int{1, 3}},
		{1, 2, []int{1, 1}},
		{8, 3, []int{2, 2, 2}},
		{7, 2, []int{1, 7}},
		{12, 2, []int{3, 4}},
	} {
		got := balancedExtents(tc.np, tc.nd)
		prod := 1
		for _, e := range got {
			prod *= e
		}
		if prod != tc.np {
			t.Errorf("balancedExtents(%d,%d) = %v: product %d", tc.np, tc.nd, got, prod)
		}
		if len(tc.want) > 0 && !intsEqual(got, tc.want) {
			t.Errorf("balancedExtents(%d,%d) = %v, want %v", tc.np, tc.nd, got, tc.want)
		}
	}
}

// TestVirtualTargetMatchesProcSection: the replay target must agree with
// the live machine's coordinate model, or restored ownership would not
// line up with what was saved.
func TestVirtualTargetMatchesProcSection(t *testing.T) {
	m := machine.New(6)
	defer m.Close()
	if err := m.Run(func(ctx *machine.Ctx) error {
		if ctx.Rank() != 0 {
			return nil
		}
		real := ctx.Machine().ProcsDim("$V", 2, 3).Whole()
		virt := virtualTarget{ext: []int{2, 3}}
		if virt.Size() != real.Size() || virt.NDims() != real.NDims() {
			t.Error("shape mismatch")
		}
		for r := 0; r < real.Size(); r++ {
			rc, ok1 := real.CoordsOf(r)
			vc, ok2 := virt.CoordsOf(r)
			if ok1 != ok2 || !intsEqual(rc, vc) {
				t.Errorf("rank %d: real coords %v(%v), virtual %v(%v)", r, rc, ok1, vc, ok2)
			}
			if virt.RankOf(vc) != r {
				t.Errorf("rank %d: RankOf(CoordsOf) = %d", r, virt.RankOf(vc))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestExtract: pulling a sub-grid out of a canonical payload must match
// recomputing values point-wise.
func TestExtract(t *testing.T) {
	from := index.Grid{Dims: []index.RunSet{
		{{Lo: 1, Hi: 8, Stride: 1}},
		{{Lo: 3, Hi: 9, Stride: 2}},
	}}
	var payload []byte
	from.ForEach(func(p index.Point) bool {
		payload = msg.AppendFloat64s(payload, []float64{fill(p)})
		return true
	})
	want := index.Grid{Dims: []index.RunSet{
		{{Lo: 2, Hi: 5, Stride: 1}},
		{{Lo: 5, Hi: 7, Stride: 2}},
	}}
	out := extract(payload, from, want)
	i := 0
	want.ForEach(func(p index.Point) bool {
		if got := msg.GetFloat64(out, 8*i); got != fill(p) {
			t.Errorf("extract[%v] = %v, want %v", p, got, fill(p))
		}
		i++
		return true
	})
}
