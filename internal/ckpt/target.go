package ckpt

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/dist"
)

// virtualTarget replays a checkpointed processor arrangement without a
// live machine behind it: a dense, 0-based, column-major processor array
// of the recorded extents.  It exists so a restore can rebuild the *old*
// distribution — possibly over more processors than the surviving machine
// has — and intersect its ownership grids against the new one.
//
// It matches machine.ProcSection's coordinate model (dense 0-based
// per-dimension coordinates, column-major rank order), which is why a
// checkpointed distribution whose save-time validation passed (see
// distMeta) replays element-for-element.
type virtualTarget struct {
	ext []int
}

func (t virtualTarget) NDims() int       { return len(t.ext) }
func (t virtualTarget) Extent(k int) int { return t.ext[k] }

func (t virtualTarget) Size() int {
	n := 1
	for _, e := range t.ext {
		n *= e
	}
	return n
}

// RankOf is column-major, like machine.ProcArray.
func (t virtualTarget) RankOf(coords []int) int {
	rank, mul := 0, 1
	for k, c := range coords {
		rank += c * mul
		mul *= t.ext[k]
	}
	return rank
}

func (t virtualTarget) CoordsOf(rank int) ([]int, bool) {
	if rank < 0 || rank >= t.Size() {
		return nil, false
	}
	coords := make([]int, len(t.ext))
	for k, e := range t.ext {
		coords[k] = rank % e
		rank /= e
	}
	return coords, true
}

func (t virtualTarget) Ranks() []int {
	out := make([]int, t.Size())
	for i := range out {
		out[i] = i
	}
	return out
}

func (t virtualTarget) String() string {
	parts := make([]string, len(t.ext))
	for k, e := range t.ext {
		parts[k] = "1:" + strconv.Itoa(e)
	}
	return "$CKPT(" + strings.Join(parts, ",") + ")"
}

// NewVirtualTarget exposes the replay target for tests and simulations
// outside this package: a dense, 0-based, column-major processor array of
// the given extents, implementing dist.Target without a live machine.
// The redistribution planner's property tests use it to build and cross
// arbitrary distributions (including multi-dimensional ones) without
// spinning up transports.
func NewVirtualTarget(extents ...int) dist.Target {
	ext := make([]int, len(extents))
	copy(ext, extents)
	return virtualTarget{ext: ext}
}

// balancedExtents factors np into nd per-dimension extents whose product
// is np, as square as possible — the processor arrangement a restore uses
// when the surviving machine cannot host the checkpointed arrangement
// exactly.
func balancedExtents(np, nd int) []int {
	out := make([]int, nd)
	rem := np
	for k := 0; k < nd; k++ {
		left := nd - k
		f := int(math.Round(math.Pow(float64(rem), 1/float64(left))))
		if f < 1 {
			f = 1
		}
		for f > 1 && rem%f != 0 {
			f--
		}
		out[k] = f
		rem /= f
	}
	// Any residue (prime np, rounding) lands on the last dimension.
	out[nd-1] *= rem
	return out
}
