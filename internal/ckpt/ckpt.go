// Package ckpt implements versioned, coordinated checkpoints of
// distributed arrays: the durable half of surviving permanent rank loss.
//
// A checkpoint *epoch* is one directory, `epoch-<n>`, holding one binary
// file per rank (that rank's local spans of every array, serialized with
// the run-based wire codecs the redistribution paths use) plus a
// `manifest.json` recording the array descriptors — domain bounds and the
// full distribution expression, including the processor-arrangement
// extents — and a CRC-32 per rank file.  Epochs commit atomically: all
// files are written into `epoch-<n>.tmp` and the directory is renamed
// only after every rank's checksum has been gathered into the manifest,
// so a crash mid-write leaves either a previous committed epoch or an
// ignorable `.tmp` directory, never a half-readable one.
//
// Restore replays the recorded distribution over a *virtual* processor
// arrangement of the checkpointed size, intersects its ownership grids
// with the live machine's, and unpacks exactly the spans each surviving
// rank now owns — so a checkpoint taken on P ranks restores onto any
// machine size, fewer *or more* ranks (elastic shrink- and
// expand-recovery, in the spirit of Sudarsan & Ribbens' redistribution
// for resizable computations).  On the same rank
// count the restore is a straight per-rank unpack of the recorded
// payload: bit-identical.
//
// All entry points are SPMD-collective and error-returning; a rank whose
// local I/O fails propagates the failure to every peer through a status
// reduction so no rank commits or proceeds alone.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

// Version is the checkpoint format version.
const Version = 1

const fileMagic = 0x5646434b // "VFCK"

// Manifest describes one committed checkpoint epoch.
type Manifest struct {
	Version int
	Epoch   int
	// NP is the number of ranks that wrote the epoch.
	NP int
	// Meta carries caller state (e.g. the iteration counter) through the
	// checkpoint, so a recovered run knows where to resume.
	Meta   map[string]string `json:",omitempty"`
	Arrays []ArrayMeta
	Files  []FileMeta
}

// ArrayMeta records one array's descriptor at checkpoint time.
type ArrayMeta struct {
	Name   string
	Lo, Hi []int // inclusive domain bounds per dimension
	Dist   DistMeta
}

// DistMeta is the serialized distribution descriptor: the per-dimension
// specifiers plus the processor-arrangement extents they were applied to.
type DistMeta struct {
	Dims          []DimMeta
	TargetExtents []int
}

// DimMeta serializes one dist.DimSpec.
type DimMeta struct {
	Kind   string
	K      int   `json:",omitempty"`
	Phase  int   `json:",omitempty"`
	Sizes  []int `json:",omitempty"`
	Bounds []int `json:",omitempty"`
}

// FileMeta records one rank file's integrity data.
type FileMeta struct {
	Rank int
	Name string
	Size int64
	CRC  uint32
}

// MetaInt reads an integer entry of the manifest's Meta map; ok is false
// when absent or malformed.
func (m *Manifest) MetaInt(key string) (int, bool) {
	s, ok := m.Meta[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	return v, err == nil
}

func epochDirName(epoch int) string   { return fmt.Sprintf("epoch-%08d", epoch) }
func rankFileName(rank int) string    { return fmt.Sprintf("rank-%04d.bin", rank) }
func stagingDirName(epoch int) string { return epochDirName(epoch) + ".tmp" }
func manifestPath(dir string) string  { return filepath.Join(dir, "manifest.json") }
func domainOf(am ArrayMeta) (index.Domain, error) {
	if len(am.Lo) == 0 || len(am.Lo) != len(am.Hi) {
		return index.Domain{}, fmt.Errorf("ckpt: array %s: malformed domain bounds", am.Name)
	}
	bounds := make([][2]int, len(am.Lo))
	for k := range am.Lo {
		bounds[k] = [2]int{am.Lo[k], am.Hi[k]}
	}
	return index.NewDomain(bounds...), nil
}

var epochDirRe = regexp.MustCompile(`^epoch-(\d{8})$`)

// LatestEpoch scans dir for the highest committed epoch (one whose
// manifest parses).  It returns epoch -1 and a nil manifest when dir
// holds no committed checkpoint.  Staging (`.tmp`) directories and epochs
// with unreadable manifests are skipped — an interrupted checkpoint is
// invisible here.
func LatestEpoch(dir string) (int, *Manifest, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return -1, nil, nil
		}
		return -1, nil, fmt.Errorf("ckpt: scanning %s: %w", dir, err)
	}
	var epochs []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if m := epochDirRe.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			epochs = append(epochs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	for _, n := range epochs {
		man, err := readManifest(filepath.Join(dir, epochDirName(n)))
		if err != nil {
			continue // uncommitted or damaged epoch: ignore
		}
		return n, man, nil
	}
	return -1, nil, nil
}

// maxEpochDir returns the highest epoch number with a directory in dir,
// committed or not (damaged epochs still occupy their name, and the
// commit rename must never collide with one).  -1 when none exist.
func maxEpochDir(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return -1, nil
		}
		return -1, err
	}
	max := -1
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if m := epochDirRe.FindStringSubmatch(e.Name()); m != nil {
			if n, _ := strconv.Atoi(m[1]); n > max {
				max = n
			}
		}
	}
	return max, nil
}

func readManifest(epochDir string) (*Manifest, error) {
	b, err := os.ReadFile(manifestPath(epochDir))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", manifestPath(epochDir), err)
	}
	if man.Version != Version {
		return nil, fmt.Errorf("ckpt: %s: format version %d, want %d", epochDir, man.Version, Version)
	}
	return &man, nil
}

// distMeta serializes d's descriptor and verifies it replays: the
// rebuilt distribution (same type over a virtual target of the same
// extents, standard dimension binding) must own exactly the same grid on
// every rank.  Distributions that cannot be replayed this way — pinned
// coordinates, transposed bindings from alignment derivation, targets
// that are proper sub-sections of the machine — are rejected at *save*
// time, when the program can still do something about it.
func distMeta(d *dist.Distribution) (DistMeta, error) {
	tg := d.Target()
	dm := DistMeta{TargetExtents: make([]int, tg.NDims())}
	for k := 0; k < tg.NDims(); k++ {
		dm.TargetExtents[k] = tg.Extent(k)
	}
	for _, spec := range d.DistType().Dims {
		dm.Dims = append(dm.Dims, DimMeta{
			Kind:   spec.Kind.String(),
			K:      spec.K,
			Phase:  spec.Phase,
			Sizes:  append([]int(nil), spec.Sizes...),
			Bounds: append([]int(nil), spec.Bounds...),
		})
	}
	rd, err := replay(dm, d.Domain())
	if err != nil {
		return DistMeta{}, fmt.Errorf("ckpt: descriptor does not serialize: %w", err)
	}
	for r := 0; r < tg.Size(); r++ {
		if !gridsEqual(rd.LocalGrid(r), d.LocalGrid(r)) {
			return DistMeta{}, fmt.Errorf("ckpt: non-standard distribution %v (pinned, sectioned or permuted target binding) is not checkpointable", d)
		}
	}
	return dm, nil
}

func dimSpecOf(dm DimMeta) (dist.DimSpec, error) {
	switch dm.Kind {
	case ":":
		return dist.ElidedDim(), nil
	case "BLOCK":
		return dist.BlockDim(), nil
	case "CYCLIC":
		s := dist.CyclicDim(dm.K)
		s.Phase = dm.Phase
		return s, nil
	case "S_BLOCK":
		return dist.SBlockDim(dm.Sizes...), nil
	case "B_BLOCK":
		return dist.BBlockDim(dm.Bounds...), nil
	}
	return dist.DimSpec{}, fmt.Errorf("ckpt: unknown distribution kind %q", dm.Kind)
}

func typeOf(dm DistMeta) (dist.Type, error) {
	specs := make([]dist.DimSpec, len(dm.Dims))
	for i, d := range dm.Dims {
		s, err := dimSpecOf(d)
		if err != nil {
			return dist.Type{}, err
		}
		specs[i] = s
	}
	return dist.NewType(specs...), nil
}

// replay rebuilds the recorded distribution over a virtual target of the
// recorded extents.
func replay(dm DistMeta, dom index.Domain) (*dist.Distribution, error) {
	typ, err := typeOf(dm)
	if err != nil {
		return nil, err
	}
	return dist.New(typ, dom, virtualTarget{ext: dm.TargetExtents})
}

func gridsEqual(a, b index.Grid) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for k := range a.Dims {
		if !a.Dims[k].Equal(b.Dims[k]) {
			return false
		}
	}
	return true
}

// agree propagates a local failure to every rank: after it returns nil,
// every rank knows every other rank succeeded.  The reduction itself runs
// under the machine's CommConfig, so a rank that died (rather than
// erred) surfaces as a transport error here.
func agree(ctx *machine.Ctx, local error) error {
	v := 0
	if local != nil {
		v = 1
	}
	out, err := ctx.Comm().AllreduceInts([]int{v}, msg.SumInt)
	if local != nil {
		return local
	}
	if err != nil {
		return err
	}
	if out[0] > 0 {
		return errors.New("ckpt: a peer rank failed")
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// Save writes one coordinated checkpoint epoch of the given arrays
// (collective; every rank passes the same arrays in the same order).
// Every array must currently be distributed.  meta (may be nil) is stored
// in the manifest for the restoring run.  It returns the committed epoch
// number.
func Save(ctx *machine.Ctx, dir string, arrays []*darray.Array, meta map[string]string) (int, error) {
	rank, np := ctx.Rank(), ctx.NP()

	// Serialize descriptors first (deterministic: every rank fails
	// identically on a non-checkpointable distribution).
	metas := make([]ArrayMeta, len(arrays))
	for i, a := range arrays {
		d := a.Dist()
		if d == nil {
			return -1, fmt.Errorf("ckpt: array %s has no distribution", a.Name())
		}
		dm, err := distMeta(d)
		if err != nil {
			return -1, fmt.Errorf("ckpt: array %s: %w", a.Name(), err)
		}
		dom := a.Domain()
		am := ArrayMeta{Name: a.Name(), Dist: dm}
		for k := 0; k < dom.Rank(); k++ {
			am.Lo = append(am.Lo, dom.Lo[k])
			am.Hi = append(am.Hi, dom.Hi[k])
		}
		metas[i] = am
	}

	// Rank 0 picks the epoch number and prepares the staging directory.
	epoch := -1
	var prepErr error
	if rank == 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			prepErr = err
		} else if latest, err := maxEpochDir(dir); err != nil {
			prepErr = err
		} else {
			epoch = latest + 1
			staging := filepath.Join(dir, stagingDirName(epoch))
			if err := os.RemoveAll(staging); err != nil {
				prepErr = err
			} else if err := os.Mkdir(staging, 0o755); err != nil {
				prepErr = err
			}
		}
		if prepErr != nil {
			epoch = -1
		}
	}
	ep, err := ctx.Comm().BcastInts(0, []int{epoch})
	if err != nil {
		return -1, fmt.Errorf("ckpt: epoch agreement: %w", err)
	}
	epoch = ep[0]
	if epoch < 0 {
		if prepErr != nil {
			return -1, fmt.Errorf("ckpt: preparing %s: %w", dir, prepErr)
		}
		return -1, errors.New("ckpt: rank 0 failed to prepare the staging directory")
	}
	staging := filepath.Join(dir, stagingDirName(epoch))

	// Each rank serializes and writes its local spans.
	buf := make([]byte, 0, 4096)
	buf = appendU32(buf, fileMagic)
	buf = appendU32(buf, Version)
	buf = appendU32(buf, uint32(epoch))
	buf = appendU32(buf, uint32(rank))
	buf = appendU32(buf, uint32(len(arrays)))
	for _, a := range arrays {
		l := a.Local(ctx)
		g := l.Grid()
		buf = appendU32(buf, uint32(g.Count()))
		buf = l.AppendPacked(buf, g)
	}
	crc := crc32.ChecksumIEEE(buf)
	writeErr := os.WriteFile(filepath.Join(staging, rankFileName(rank)), buf, 0o644)
	if err := agree(ctx, writeErr); err != nil {
		return -1, fmt.Errorf("ckpt: writing epoch %d: %w", epoch, err)
	}

	// Gather integrity data; rank 0 writes the manifest and commits.
	sums, err := ctx.Comm().AllgatherInts([]int{int(crc), len(buf)})
	if err != nil {
		return -1, fmt.Errorf("ckpt: checksum gather: %w", err)
	}
	var commitErr error
	if rank == 0 {
		man := Manifest{Version: Version, Epoch: epoch, NP: np, Meta: meta, Arrays: metas}
		for r := 0; r < np; r++ {
			man.Files = append(man.Files, FileMeta{
				Rank: r, Name: rankFileName(r), Size: int64(sums[r][1]), CRC: uint32(sums[r][0]),
			})
		}
		b, err := json.MarshalIndent(&man, "", "  ")
		if err == nil {
			err = os.WriteFile(manifestPath(staging), b, 0o644)
		}
		if err == nil {
			// The rename is the commit point: before it the epoch is an
			// ignorable .tmp directory, after it the manifest and every
			// checksummed rank file are in place.
			err = os.Rename(staging, filepath.Join(dir, epochDirName(epoch)))
		}
		commitErr = err
	}
	if err := agree(ctx, commitErr); err != nil {
		return -1, fmt.Errorf("ckpt: committing epoch %d: %w", epoch, err)
	}
	return epoch, nil
}

// rankPayloads parses and integrity-checks one recorded rank file,
// returning the per-array payloads in manifest order.
func rankPayloads(epochDir string, man *Manifest, r int) ([][]byte, error) {
	fm := man.Files[r]
	data, err := os.ReadFile(filepath.Join(epochDir, fm.Name))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != fm.Size || crc32.ChecksumIEEE(data) != fm.CRC {
		return nil, fmt.Errorf("ckpt: %s/%s: checksum mismatch (corrupt or interrupted checkpoint)", epochDir, fm.Name)
	}
	if len(data) < 20 {
		return nil, fmt.Errorf("ckpt: %s/%s: truncated header", epochDir, fm.Name)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(data[off:])) }
	if u32(0) != fileMagic || u32(4) != Version || u32(8) != man.Epoch || u32(12) != r {
		return nil, fmt.Errorf("ckpt: %s/%s: header mismatch", epochDir, fm.Name)
	}
	narr := u32(16)
	if narr != len(man.Arrays) {
		return nil, fmt.Errorf("ckpt: %s/%s: %d arrays recorded, manifest has %d", epochDir, fm.Name, narr, len(man.Arrays))
	}
	payloads := make([][]byte, narr)
	off := 20
	for i := 0; i < narr; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload table", epochDir, fm.Name)
		}
		n := u32(off)
		off += 4
		if off+8*n > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload %d", epochDir, fm.Name, i)
		}
		payloads[i] = data[off : off+8*n]
		off += 8 * n
	}
	return payloads, nil
}

// extract pulls the values at want's points (canonical order) out of a
// payload recorded in from's canonical enumeration order.  want must be a
// subset of from.
func extract(payload []byte, from, want index.Grid) []byte {
	// Column-major position strides over from's per-dimension counts,
	// dimension 0 innermost — the canonical enumeration of ForEachRun.
	strd := make([]int, from.Rank())
	mul := 1
	for k := range strd {
		strd[k] = mul
		mul *= from.Dims[k].Count()
	}
	var out []byte
	out, _ = msg.GrowFloat64s(out, want.Count())
	off := 0
	want.ForEachRun(func(p index.Point, r index.Run) bool {
		row := 0
		for k := 1; k < len(p); k++ {
			row += from.Dims[k].IndexOf(p[k]) * strd[k]
		}
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			idx := row + from.Dims[0].IndexOf(i)
			msg.PutFloat64(out, off, msg.GetFloat64(payload, 8*idx))
			off += 8
		}
		return true
	})
	return out
}

// RestoreResult reports what a restore did.
type RestoreResult struct {
	Manifest *Manifest
	// Resized is true when the checkpoint was written by a different
	// number of ranks than the restoring machine has.
	Resized bool
}

// Restore fills the given arrays from the latest committed epoch in dir
// (collective).  Arrays are matched to the manifest by name; every
// manifest array must be present (extra live arrays are left untouched).
// Each array is first re-associated with the restored distribution
// descriptor — replayed exactly when the surviving machine can host the
// recorded processor arrangement, re-factored over the surviving ranks
// otherwise (np-dependent S_BLOCK/B_BLOCK specifiers degrade to BLOCK) —
// and then filled with the recorded values.  Ghost areas are left stale;
// refresh them with ExchangeGhosts before stencil use.
func Restore(ctx *machine.Ctx, dir string, arrays []*darray.Array) (*RestoreResult, error) {
	rank, np := ctx.Rank(), ctx.NP()

	// Rank 0 locates the latest committed epoch and broadcasts the
	// manifest so every rank restores the same one even if a concurrent
	// writer commits meanwhile.
	var manBytes []byte
	var scanErr error
	if rank == 0 {
		epoch, man, err := LatestEpoch(dir)
		switch {
		case err != nil:
			scanErr = err
		case epoch < 0:
			scanErr = fmt.Errorf("ckpt: no committed checkpoint in %s", dir)
		default:
			manBytes, scanErr = json.Marshal(man)
		}
		if scanErr != nil {
			manBytes = nil
		}
	}
	manBytes, err := ctx.Comm().Bcast(0, manBytes)
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest broadcast: %w", err)
	}
	if len(manBytes) == 0 {
		if scanErr != nil {
			return nil, scanErr
		}
		return nil, fmt.Errorf("ckpt: no committed checkpoint in %s", dir)
	}
	var man Manifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, fmt.Errorf("ckpt: manifest decode: %w", err)
	}
	if len(man.Files) != man.NP {
		return nil, fmt.Errorf("ckpt: manifest lists %d files for %d ranks", len(man.Files), man.NP)
	}
	epochDir := filepath.Join(dir, epochDirName(man.Epoch))

	byName := make(map[string]*darray.Array, len(arrays))
	for _, a := range arrays {
		byName[a.Name()] = a
	}

	// Old-rank payloads are loaded (and integrity-checked) on demand,
	// once per old rank per restoring rank.
	loaded := make(map[int][][]byte)
	payloadsOf := func(r int) ([][]byte, error) {
		if p, ok := loaded[r]; ok {
			return p, nil
		}
		p, err := rankPayloads(epochDir, &man, r)
		if err != nil {
			return nil, err
		}
		loaded[r] = p
		return p, nil
	}

	res := &RestoreResult{Manifest: &man, Resized: man.NP != np}
	for ai, am := range man.Arrays {
		arr, ok := byName[am.Name]
		if !ok {
			return nil, fmt.Errorf("ckpt: checkpointed array %s is not declared in the restoring program", am.Name)
		}
		dom, err := domainOf(am)
		if err != nil {
			return nil, err
		}
		if !arr.Domain().Equal(dom) {
			return nil, fmt.Errorf("ckpt: array %s: domain %v in checkpoint, %v declared", am.Name, dom, arr.Domain())
		}

		// The old distribution, replayed over a virtual arrangement of
		// the recorded size.  Built once and shared (SPMD) so its
		// memoized ownership tables exist once.
		type distOrErr struct {
			d   *dist.Distribution
			err error
		}
		old := ctx.CollectiveOnce(func() any {
			d, err := replay(am.Dist, dom)
			return distOrErr{d, err}
		}).(distOrErr)
		if old.err != nil {
			return nil, fmt.Errorf("ckpt: array %s: %w", am.Name, old.err)
		}
		oldD := old.d

		// The destination distribution on the live machine: the recorded
		// arrangement when the sizes match exactly, a balanced
		// re-factorization over all np ranks otherwise.  Both directions
		// resize: a restore onto fewer ranks (shrink recovery) compacts
		// the arrangement, and a restore onto more ranks (expand
		// recovery after a join) spreads it so the new members own data
		// instead of idling.
		oldExt := am.Dist.TargetExtents
		newExt := oldExt
		if (virtualTarget{ext: oldExt}).Size() != np {
			newExt = balancedExtents(np, len(oldExt))
		}
		newMeta := am.Dist
		if !intsEqual(newExt, oldExt) {
			newMeta = remapDims(am.Dist, newExt)
		}
		procName := "$CKPT"
		for _, e := range newExt {
			procName += "x" + strconv.Itoa(e)
		}
		target := ctx.Machine().ProcsDim(procName, newExt...).Whole()
		neu := ctx.CollectiveOnce(func() any {
			typ, err := typeOf(newMeta)
			if err != nil {
				return distOrErr{nil, err}
			}
			d, err := dist.New(typ, dom, target)
			return distOrErr{d, err}
		}).(distOrErr)
		if neu.err != nil {
			return nil, fmt.Errorf("ckpt: array %s: rebuilding distribution: %w", am.Name, neu.err)
		}

		// Adopt the descriptor without moving the (stale) data, then fill
		// the owned spans from the recorded payloads.
		if err := arr.RedistributeTo(ctx, neu.d, darray.NoTransfer()); err != nil {
			return nil, fmt.Errorf("ckpt: array %s: %w", am.Name, err)
		}
		l := arr.Local(ctx)
		myGrid := l.Grid()
		var fillErr error
		for r := 0; r < man.NP && fillErr == nil; r++ {
			if !oldD.IsPrimaryRank(r) {
				continue // replicated copies are identical; read one
			}
			oldGrid := oldD.LocalGrid(r)
			inter := myGrid.Intersect(oldGrid)
			if inter.Empty() {
				continue
			}
			payloads, err := payloadsOf(r)
			if err != nil {
				fillErr = err
				break
			}
			payload := payloads[ai]
			if msg.Float64Count(payload) != oldGrid.Count() {
				fillErr = fmt.Errorf("ckpt: array %s: rank %d payload has %d values, grid has %d",
					am.Name, r, msg.Float64Count(payload), oldGrid.Count())
				break
			}
			if gridsEqual(inter, oldGrid) && gridsEqual(inter, myGrid) {
				// Same ownership (the same-rank-count fast path): unpack
				// the whole recorded payload directly — bit-identical.
				l.UnpackWire(myGrid, payload)
				continue
			}
			l.UnpackWire(inter, extract(payload, oldGrid, inter))
		}
		if err := agree(ctx, fillErr); err != nil {
			return nil, fmt.Errorf("ckpt: array %s: restore: %w", am.Name, err)
		}
	}
	if err := ctx.Barrier(); err != nil {
		return nil, fmt.Errorf("ckpt: restore barrier: %w", err)
	}
	return res, nil
}

// remapDims adapts np-dependent per-dimension specifiers to a new
// processor arrangement: S_BLOCK/B_BLOCK segment tables sized for the old
// arrangement degrade to BLOCK; BLOCK, CYCLIC and ":" carry over.
func remapDims(dm DistMeta, newExt []int) DistMeta {
	out := DistMeta{TargetExtents: newExt, Dims: make([]DimMeta, len(dm.Dims))}
	copy(out.Dims, dm.Dims)
	td := 0
	for i, d := range dm.Dims {
		if d.Kind == ":" {
			continue
		}
		if d.Kind == "S_BLOCK" || d.Kind == "B_BLOCK" {
			if td < len(newExt) && td < len(dm.TargetExtents) && newExt[td] != dm.TargetExtents[td] {
				out.Dims[i] = DimMeta{Kind: "BLOCK"}
			}
		}
		td++
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
