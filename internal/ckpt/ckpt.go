// Package ckpt implements versioned, coordinated checkpoints of
// distributed arrays: the durable half of surviving permanent rank loss.
//
// Since PR 9 the storage engine underneath is internal/pario, a
// ViPIOS-style parallel I/O subsystem.  A checkpoint *epoch* is one
// directory, `epoch-<n>`, holding:
//
//   - `stripe-<s>.bin` — NS stripe files in a canonical *file order*
//     decoupled from the in-memory distribution: each array's domain is
//     split into NS contiguous slabs of its canonical enumeration
//     (pario.StripeGrids), and a two-phase collective write first
//     exchanges every rank's local spans into the stripe owners (the
//     I/O server ranks) and only then touches disk — however the arrays
//     are distributed, each stripe is written exactly once, sequentially,
//     by one rank;
//   - optional redundancy: a parity stripe (byte-wise XOR) or a full
//     replica of every stripe, so any single lost or corrupt stripe file
//     of an epoch is reconstructed at restore time — and repaired in
//     place (self-healing); a Scrub pass detects and fixes rot before it
//     is needed;
//   - `manifest.json` recording the array descriptors (domain bounds and
//     the full distribution expression), the stripe map with a CRC-32
//     per stripe, and the redundancy mode.
//
// Epochs commit atomically: all files are written into `epoch-<n>.tmp`
// and the directory is renamed only after every stripe's checksum has
// been gathered into the manifest.  A crash mid-write leaves either a
// previous committed epoch or a stale `.tmp` directory, which the next
// Save garbage-collects.  Restore — and LatestEpoch — trust no epoch
// blindly: they verify completeness (manifest parses, every stripe file
// checks out or is recoverable through redundancy) and fall back epoch
// by epoch to the newest verifiably complete one.
//
// The format-1 layout (one flat file per rank, PR 4) is still readable;
// Save always writes format 2.
//
// Restore replays the recorded distribution over a *virtual* processor
// arrangement of the checkpointed size, intersects its ownership grids
// with the live machine's, and unpacks exactly the spans each surviving
// rank now owns — so a checkpoint taken on P ranks restores onto any
// machine size, fewer *or more* ranks.  On the same rank count the
// restore is bit-identical.
//
// All entry points are SPMD-collective and error-returning; a rank whose
// local I/O fails propagates the failure to every peer through a status
// reduction so no rank commits or proceeds alone.
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/pario"
	"repro/internal/trace"
)

// Version is the checkpoint format version Save writes.
const Version = 2

// VersionV1 is the PR-4 format: one flat file per writing rank, no
// redundancy.  Still readable by Restore and LatestEpoch.
const VersionV1 = 1

const (
	fileMagic   = 0x5646434b // "VFCK": v1 per-rank files
	stripeMagic = 0x56465354 // "VFST": v2 stripe files
)

// Options configures the parallel-I/O side of Save/Restore.  The zero
// value means: min(np, 4) I/O servers, parity redundancy, keep all
// epochs, the real filesystem, no I/O deadline or retries.
type Options struct {
	// Servers is the number of I/O server ranks — and therefore stripe
	// files — per epoch (<= 0: min(np, 4); capped at np).
	Servers int
	// Redundancy selects the self-healing mode: pario.RedundancyParity
	// (default), pario.RedundancyReplica, or pario.RedundancyNone.
	Redundancy string
	// Keep, when > 0, prunes all but the newest Keep committed epochs
	// after each successful Save (<= 0: keep everything).  The epoch just
	// committed is never pruned.
	Keep int
	// FS returns the filesystem rank performs its I/O through (nil: the
	// real filesystem for every rank).  Per-rank resolution keeps
	// injected fault schedules deterministic: pass (*pario.FaultFS).Rank
	// to put a seeded fault plan under every read and write.
	FS func(rank int) pario.FS
	// IO is the per-operation deadline/retry/backoff policy (and metrics
	// sink) applied to every filesystem operation.
	IO pario.Config
}

func (o Options) withDefaults(np int) Options {
	if o.Servers <= 0 {
		o.Servers = 4
	}
	if o.Servers > np {
		o.Servers = np
	}
	if np < o.Servers {
		o.Servers = np
	}
	if o.Redundancy == "" {
		o.Redundancy = pario.RedundancyParity
	}
	if o.FS == nil {
		o.FS = func(int) pario.FS { return pario.OS{} }
	}
	return o
}

// Validate rejects malformed options deterministically on every rank.
func (o Options) Validate() error {
	if o.Redundancy != "" && !pario.ValidRedundancy(o.Redundancy) {
		return fmt.Errorf("ckpt: unknown redundancy mode %q (want none|parity|replica)", o.Redundancy)
	}
	return nil
}

// Manifest describes one committed checkpoint epoch.
type Manifest struct {
	Version int
	Epoch   int
	// NP is the number of ranks that wrote the epoch.
	NP int
	// Meta carries caller state (e.g. the iteration counter) through the
	// checkpoint, so a recovered run knows where to resume.
	Meta   map[string]string `json:",omitempty"`
	Arrays []ArrayMeta
	// Files lists the per-rank data files of a format-1 epoch.
	Files []FileMeta `json:",omitempty"`
	// NS is the stripe count of a format-2 epoch.
	NS int `json:",omitempty"`
	// Redundancy is the format-2 self-healing mode (none|parity|replica).
	Redundancy string `json:",omitempty"`
	// Stripes lists the stripe files of a format-2 epoch (Rank is the
	// stripe index).
	Stripes []FileMeta `json:",omitempty"`
	// Parity is the parity stripe of a parity-redundant epoch.
	Parity *FileMeta `json:",omitempty"`
}

// ArrayMeta records one array's descriptor at checkpoint time.
type ArrayMeta struct {
	Name   string
	Lo, Hi []int // inclusive domain bounds per dimension
	Dist   DistMeta
}

// DistMeta is the serialized distribution descriptor: the per-dimension
// specifiers plus the processor-arrangement extents they were applied to.
type DistMeta struct {
	Dims          []DimMeta
	TargetExtents []int
}

// DimMeta serializes one dist.DimSpec.
type DimMeta struct {
	Kind   string
	K      int   `json:",omitempty"`
	Phase  int   `json:",omitempty"`
	Sizes  []int `json:",omitempty"`
	Bounds []int `json:",omitempty"`
}

// FileMeta records one data file's integrity data.  Rank is the writing
// rank for format-1 files and the stripe index for format-2 stripes.
type FileMeta struct {
	Rank int
	Name string
	Size int64
	CRC  uint32
}

// MetaInt reads an integer entry of the manifest's Meta map; ok is false
// when absent or malformed.
func (m *Manifest) MetaInt(key string) (int, bool) {
	s, ok := m.Meta[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	return v, err == nil
}

// stripeSet builds the pario view of a format-2 epoch's files.
func (m *Manifest) stripeSet(epochDir string) pario.StripeSet {
	set := pario.StripeSet{Dir: epochDir, Redundancy: m.Redundancy}
	for _, fm := range m.Stripes {
		set.Stripes = append(set.Stripes, pario.StripeInfo{Name: fm.Name, Size: fm.Size, CRC: fm.CRC})
	}
	if m.Parity != nil {
		set.Parity = &pario.StripeInfo{Name: m.Parity.Name, Size: m.Parity.Size, CRC: m.Parity.CRC}
	}
	return set
}

// EpochDir returns the directory a committed epoch lives in — the path
// tools (and fault-injection tests) damage to exercise degraded-mode
// restore.
func EpochDir(dir string, epoch int) string {
	return filepath.Join(dir, epochDirName(epoch))
}

func epochDirName(epoch int) string   { return fmt.Sprintf("epoch-%08d", epoch) }
func rankFileName(rank int) string    { return fmt.Sprintf("rank-%04d.bin", rank) }
func stripeFileName(s int) string     { return fmt.Sprintf("stripe-%04d.bin", s) }
func parityFileName() string          { return "parity.bin" }
func stagingDirName(epoch int) string { return epochDirName(epoch) + ".tmp" }
func manifestPath(dir string) string  { return filepath.Join(dir, "manifest.json") }
func domainOf(am ArrayMeta) (index.Domain, error) {
	if len(am.Lo) == 0 || len(am.Lo) != len(am.Hi) {
		return index.Domain{}, fmt.Errorf("ckpt: array %s: malformed domain bounds", am.Name)
	}
	bounds := make([][2]int, len(am.Lo))
	for k := range am.Lo {
		bounds[k] = [2]int{am.Lo[k], am.Hi[k]}
	}
	return index.NewDomain(bounds...), nil
}

var (
	epochDirRe   = regexp.MustCompile(`^epoch-(\d{8})$`)
	stagingDirRe = regexp.MustCompile(`^epoch-\d{8}\.tmp$`)
)

// epochsIn lists the committed epoch numbers in dir, descending.
func epochsIn(f pario.FS, dir string) ([]int, error) {
	ents, err := f.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: scanning %s: %w", dir, err)
	}
	var epochs []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if m := epochDirRe.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			epochs = append(epochs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	return epochs, nil
}

// verifyEpoch reports whether an epoch is *verifiably complete*: every
// data file integrity-checks against the manifest, or — for a
// redundant format-2 epoch — the damage is within what redundancy can
// reconstruct.
func verifyEpoch(f pario.FS, cfg pario.Config, tr *trace.Tracer, rank int, epochDir string, man *Manifest) bool {
	if man.Version == VersionV1 {
		if len(man.Files) != man.NP {
			return false
		}
		for _, fm := range man.Files {
			data, err := cfg.ReadFile(f, tr, rank, filepath.Join(epochDir, fm.Name))
			if err != nil || int64(len(data)) != fm.Size || crc32IEEE(data) != fm.CRC {
				return false
			}
		}
		return true
	}
	if man.NS <= 0 || len(man.Stripes) != man.NS {
		return false
	}
	set := man.stripeSet(epochDir)
	return set.Verify(f, cfg, tr, rank).Recoverable
}

// LatestEpoch scans dir for the newest *verifiably complete* epoch: its
// manifest parses and every data file checks out (or, for a redundant
// epoch, is reconstructible).  It returns epoch -1 and a nil manifest
// when dir holds no usable checkpoint.  Staging (`.tmp`) directories,
// epochs with unreadable manifests, and epochs with missing or corrupt
// data files beyond redundancy are all skipped — an interrupted or
// bit-rotted checkpoint is invisible here, and the newest complete
// predecessor wins.
func LatestEpoch(dir string) (int, *Manifest, error) {
	return latestUsable(pario.OS{}, pario.Config{}, nil, 0, dir)
}

func latestUsable(f pario.FS, cfg pario.Config, tr *trace.Tracer, rank int, dir string) (int, *Manifest, error) {
	epochs, err := epochsIn(f, dir)
	if err != nil {
		return -1, nil, err
	}
	for _, n := range epochs {
		epochDir := filepath.Join(dir, epochDirName(n))
		man, err := readManifest(f, cfg, tr, rank, epochDir)
		if err != nil {
			continue // uncommitted or damaged epoch: ignore
		}
		if !verifyEpoch(f, cfg, tr, rank, epochDir, man) {
			continue // incomplete (lost/corrupt data files): fall back
		}
		return n, man, nil
	}
	return -1, nil, nil
}

// maxEpochDir returns the highest epoch number with a directory in dir,
// committed or not (damaged epochs still occupy their name, and the
// commit rename must never collide with one).  -1 when none exist.
func maxEpochDir(f pario.FS, dir string) (int, error) {
	epochs, err := epochsIn(f, dir)
	if err != nil {
		return -1, err
	}
	if len(epochs) == 0 {
		return -1, nil
	}
	return epochs[0], nil
}

func readManifest(f pario.FS, cfg pario.Config, tr *trace.Tracer, rank int, epochDir string) (*Manifest, error) {
	b, err := cfg.ReadFile(f, tr, rank, manifestPath(epochDir))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", manifestPath(epochDir), err)
	}
	if man.Version != Version && man.Version != VersionV1 {
		return nil, fmt.Errorf("ckpt: %s: format version %d, want %d or %d", epochDir, man.Version, VersionV1, Version)
	}
	return &man, nil
}

// distMeta serializes d's descriptor and verifies it replays: the
// rebuilt distribution (same type over a virtual target of the same
// extents, standard dimension binding) must own exactly the same grid on
// every rank.  Distributions that cannot be replayed this way — pinned
// coordinates, transposed bindings from alignment derivation, targets
// that are proper sub-sections of the machine — are rejected at *save*
// time, when the program can still do something about it.
func distMeta(d *dist.Distribution) (DistMeta, error) {
	tg := d.Target()
	dm := DistMeta{TargetExtents: make([]int, tg.NDims())}
	for k := 0; k < tg.NDims(); k++ {
		dm.TargetExtents[k] = tg.Extent(k)
	}
	for _, spec := range d.DistType().Dims {
		dm.Dims = append(dm.Dims, DimMeta{
			Kind:   spec.Kind.String(),
			K:      spec.K,
			Phase:  spec.Phase,
			Sizes:  append([]int(nil), spec.Sizes...),
			Bounds: append([]int(nil), spec.Bounds...),
		})
	}
	rd, err := replay(dm, d.Domain())
	if err != nil {
		return DistMeta{}, fmt.Errorf("ckpt: descriptor does not serialize: %w", err)
	}
	for r := 0; r < tg.Size(); r++ {
		if !gridsEqual(rd.LocalGrid(r), d.LocalGrid(r)) {
			return DistMeta{}, fmt.Errorf("ckpt: non-standard distribution %v (pinned, sectioned or permuted target binding) is not checkpointable", d)
		}
	}
	return dm, nil
}

func dimSpecOf(dm DimMeta) (dist.DimSpec, error) {
	switch dm.Kind {
	case ":":
		return dist.ElidedDim(), nil
	case "BLOCK":
		return dist.BlockDim(), nil
	case "CYCLIC":
		s := dist.CyclicDim(dm.K)
		s.Phase = dm.Phase
		return s, nil
	case "S_BLOCK":
		return dist.SBlockDim(dm.Sizes...), nil
	case "B_BLOCK":
		return dist.BBlockDim(dm.Bounds...), nil
	}
	return dist.DimSpec{}, fmt.Errorf("ckpt: unknown distribution kind %q", dm.Kind)
}

func typeOf(dm DistMeta) (dist.Type, error) {
	specs := make([]dist.DimSpec, len(dm.Dims))
	for i, d := range dm.Dims {
		s, err := dimSpecOf(d)
		if err != nil {
			return dist.Type{}, err
		}
		specs[i] = s
	}
	return dist.NewType(specs...), nil
}

// replay rebuilds the recorded distribution over a virtual target of the
// recorded extents.
func replay(dm DistMeta, dom index.Domain) (*dist.Distribution, error) {
	typ, err := typeOf(dm)
	if err != nil {
		return nil, err
	}
	return dist.New(typ, dom, virtualTarget{ext: dm.TargetExtents})
}

func gridsEqual(a, b index.Grid) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for k := range a.Dims {
		if !a.Dims[k].Equal(b.Dims[k]) {
			return false
		}
	}
	return true
}

// agree propagates a local failure to every rank: after it returns nil,
// every rank knows every other rank succeeded.  The reduction itself runs
// under the machine's CommConfig, so a rank that died (rather than
// erred) surfaces as a transport error here.
func agree(ctx *machine.Ctx, local error) error {
	v := 0
	if local != nil {
		v = 1
	}
	out, err := ctx.Comm().AllreduceInts([]int{v}, msg.SumInt)
	if local != nil {
		return local
	}
	if err != nil {
		return err
	}
	if out[0] > 0 {
		return errors.New("ckpt: a peer rank failed")
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func getU32(b []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(b[off:])
}

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// remapDims adapts np-dependent per-dimension specifiers to a new
// processor arrangement: S_BLOCK/B_BLOCK segment tables sized for the old
// arrangement degrade to BLOCK; BLOCK, CYCLIC and ":" carry over.
func remapDims(dm DistMeta, newExt []int) DistMeta {
	out := DistMeta{TargetExtents: newExt, Dims: make([]DimMeta, len(dm.Dims))}
	copy(out.Dims, dm.Dims)
	td := 0
	for i, d := range dm.Dims {
		if d.Kind == ":" {
			continue
		}
		if d.Kind == "S_BLOCK" || d.Kind == "B_BLOCK" {
			if td < len(newExt) && td < len(dm.TargetExtents) && newExt[td] != dm.TargetExtents[td] {
				out.Dims[i] = DimMeta{Kind: "BLOCK"}
			}
		}
		td++
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
