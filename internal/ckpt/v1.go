package ckpt

import (
	"fmt"
	"path/filepath"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/msg"
	"repro/internal/pario"
	"repro/internal/trace"
)

// v1Reader reads the format-1 layout: one flat file per writing rank,
// keyed by the old distribution's per-rank ownership, no redundancy.
// Kept so checkpoints taken before the striped format remain restorable.
type v1Reader struct {
	f        pario.FS
	cfg      pario.Config
	tr       *trace.Tracer
	rank     int
	epochDir string
	man      *Manifest
	loaded   map[int][][]byte
}

func newV1Reader(f pario.FS, cfg pario.Config, tr *trace.Tracer, rank int, epochDir string, man *Manifest) *v1Reader {
	return &v1Reader{f: f, cfg: cfg, tr: tr, rank: rank, epochDir: epochDir, man: man, loaded: make(map[int][][]byte)}
}

// payloadsOf parses and integrity-checks one recorded rank file,
// returning the per-array payloads in manifest order (cached).
func (vr *v1Reader) payloadsOf(r int) ([][]byte, error) {
	if p, ok := vr.loaded[r]; ok {
		return p, nil
	}
	fm := vr.man.Files[r]
	data, err := vr.cfg.ReadFile(vr.f, vr.tr, vr.rank, filepath.Join(vr.epochDir, fm.Name))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != fm.Size || crc32IEEE(data) != fm.CRC {
		return nil, fmt.Errorf("ckpt: %s/%s: checksum mismatch (corrupt or interrupted checkpoint)", vr.epochDir, fm.Name)
	}
	if len(data) < 20 {
		return nil, fmt.Errorf("ckpt: %s/%s: truncated header", vr.epochDir, fm.Name)
	}
	u32 := func(off int) int { return int(getU32(data, off)) }
	if u32(0) != fileMagic || u32(4) != VersionV1 || u32(8) != vr.man.Epoch || u32(12) != r {
		return nil, fmt.Errorf("ckpt: %s/%s: header mismatch", vr.epochDir, fm.Name)
	}
	narr := u32(16)
	if narr != len(vr.man.Arrays) {
		return nil, fmt.Errorf("ckpt: %s/%s: %d arrays recorded, manifest has %d", vr.epochDir, fm.Name, narr, len(vr.man.Arrays))
	}
	payloads := make([][]byte, narr)
	off := 20
	for i := 0; i < narr; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload table", vr.epochDir, fm.Name)
		}
		n := u32(off)
		off += 4
		if off+8*n > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload %d", vr.epochDir, fm.Name, i)
		}
		payloads[i] = data[off : off+8*n]
		off += 8 * n
	}
	vr.loaded[r] = payloads
	return payloads, nil
}

// fill unpacks the spans of myGrid from the old ranks' files, using the
// replayed old distribution to know what each file holds.
func (vr *v1Reader) fill(l *darray.Local, myGrid index.Grid, oldD *dist.Distribution, ai, oldNP int) error {
	for r := 0; r < oldNP; r++ {
		if !oldD.IsPrimaryRank(r) {
			continue // replicated copies are identical; read one
		}
		oldGrid := oldD.LocalGrid(r)
		inter := myGrid.Intersect(oldGrid)
		if inter.Empty() {
			continue
		}
		payloads, err := vr.payloadsOf(r)
		if err != nil {
			return err
		}
		payload := payloads[ai]
		if msg.Float64Count(payload) != oldGrid.Count() {
			return fmt.Errorf("ckpt: rank %d payload has %d values, grid has %d",
				r, msg.Float64Count(payload), oldGrid.Count())
		}
		if gridsEqual(inter, oldGrid) && gridsEqual(inter, myGrid) {
			// Same ownership (the same-rank-count fast path): unpack
			// the whole recorded payload directly — bit-identical.
			l.UnpackWire(myGrid, payload)
			continue
		}
		l.UnpackWire(inter, extract(payload, oldGrid, inter))
	}
	return nil
}
