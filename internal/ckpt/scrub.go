package ckpt

import (
	"fmt"
	"path/filepath"

	"repro/internal/trace"
)

// ScrubSummary reports a Scrub pass over a checkpoint directory.
type ScrubSummary struct {
	// Epochs counts committed epochs examined.
	Epochs int
	// Checked counts integrity-checked files across all epochs.
	Checked int
	// Repaired lists files rewritten in place from redundancy
	// (epoch-qualified paths relative to the checkpoint directory).
	Repaired []string
	// Unrecoverable lists damaged files no redundancy could rebuild.
	Unrecoverable []string
}

// Scrub walks every committed epoch in dir, integrity-checks all of its
// files, and repairs what redundancy can rebuild — data stripes from
// parity or replica, damaged parity recomputed from intact stripes,
// damaged replicas recopied from their primaries.  Run it periodically
// (or before shrinking redundancy) so silent bitrot is caught while the
// redundant copy still exists, not at restore time.  Unrecoverable
// damage is reported, not an error: LatestEpoch and Restore already
// skip epochs that cannot be read.
//
// Scrub is a single-process maintenance pass, not a collective: call it
// from one place (a tool, or rank 0 between runs).
func Scrub(dir string, opts Options) (*ScrubSummary, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(1)
	f := opts.FS(0)
	cfg := opts.IO
	var tr *trace.Tracer

	epochs, err := epochsIn(f, dir)
	if err != nil {
		return nil, err
	}
	sum := &ScrubSummary{}
	for _, n := range epochs {
		epochDir := filepath.Join(dir, epochDirName(n))
		man, err := readManifest(f, cfg, tr, 0, epochDir)
		if err != nil {
			continue // uncommitted or damaged epoch: not scrubbable
		}
		sum.Epochs++
		if man.Version == VersionV1 {
			// No redundancy to heal from: verify and report only.
			for _, fm := range man.Files {
				sum.Checked++
				data, err := cfg.ReadFile(f, tr, 0, filepath.Join(epochDir, fm.Name))
				if err != nil || int64(len(data)) != fm.Size || crc32IEEE(data) != fm.CRC {
					sum.Unrecoverable = append(sum.Unrecoverable, filepath.Join(epochDirName(n), fm.Name))
				}
			}
			continue
		}
		set := man.stripeSet(epochDir)
		rep, err := set.Scrub(f, cfg, tr, 0)
		if err != nil {
			return sum, fmt.Errorf("ckpt: scrubbing %s: %w", epochDir, err)
		}
		sum.Checked += rep.Checked
		for _, name := range rep.Repaired {
			sum.Repaired = append(sum.Repaired, filepath.Join(epochDirName(n), name))
		}
		for _, name := range rep.Unrecoverable {
			sum.Unrecoverable = append(sum.Unrecoverable, filepath.Join(epochDirName(n), name))
		}
	}
	return sum, nil
}
