package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"repro/internal/darray"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/pario"
	"repro/internal/trace"
)

// Save writes one coordinated checkpoint epoch of the given arrays with
// default I/O options (collective).  See SaveOpts.
func Save(ctx *machine.Ctx, dir string, arrays []*darray.Array, meta map[string]string) (int, error) {
	return SaveOpts(ctx, dir, arrays, meta, Options{})
}

// SaveOpts writes one coordinated checkpoint epoch of the given arrays
// (collective; every rank passes the same arrays in the same order and
// the same options).  Every array must currently be distributed.  meta
// (may be nil) is stored in the manifest for the restoring run.
//
// The write is two-phase, ViPIOS style: each array's domain is split
// into opts.Servers stripes of the canonical file order, every rank's
// primary local spans are exchanged into the stripe owners with one
// collective Alltoallv per epoch, and only then do the I/O server ranks
// touch disk — each stripe written once, sequentially, by its server's
// dedicated goroutine while the ranks move on to the checksum gather and
// commit agreement.  Redundancy (a parity stripe built by a pipelined
// XOR chain across the servers, or a full replica of every stripe) is
// written in the same pass.  It returns the committed epoch number.
func SaveOpts(ctx *machine.Ctx, dir string, arrays []*darray.Array, meta map[string]string, opts Options) (int, error) {
	rank, np := ctx.Rank(), ctx.NP()
	if err := opts.Validate(); err != nil {
		return -1, err
	}
	opts = opts.withDefaults(np)
	f := opts.FS(rank)
	cfg := opts.IO
	tr := ctx.Tracer()
	ns := opts.Servers

	// Serialize descriptors first (deterministic: every rank fails
	// identically on a non-checkpointable distribution).
	metas := make([]ArrayMeta, len(arrays))
	for i, a := range arrays {
		d := a.Dist()
		if d == nil {
			return -1, fmt.Errorf("ckpt: array %s has no distribution", a.Name())
		}
		dm, err := distMeta(d)
		if err != nil {
			return -1, fmt.Errorf("ckpt: array %s: %w", a.Name(), err)
		}
		dom := a.Domain()
		am := ArrayMeta{Name: a.Name(), Dist: dm}
		for k := 0; k < dom.Rank(); k++ {
			am.Lo = append(am.Lo, dom.Lo[k])
			am.Hi = append(am.Hi, dom.Hi[k])
		}
		metas[i] = am
	}

	// Rank 0 picks the epoch number, garbage-collects staging directories
	// a crashed run left behind, and prepares this epoch's staging dir.
	epoch := -1
	var prepErr error
	if rank == 0 {
		epoch, prepErr = prepareStaging(f, cfg, tr, dir)
	}
	ep, err := ctx.Comm().BcastInts(0, []int{epoch})
	if err != nil {
		return -1, fmt.Errorf("ckpt: epoch agreement: %w", err)
	}
	epoch = ep[0]
	if epoch < 0 {
		if prepErr != nil {
			return -1, fmt.Errorf("ckpt: preparing %s: %w", dir, prepErr)
		}
		return -1, errors.New("ckpt: rank 0 failed to prepare the staging directory")
	}
	staging := filepath.Join(dir, stagingDirName(epoch))

	// Phase one: the collective exchange.  Each array's domain is striped
	// into ns canonical-order slabs; every rank packs the intersection of
	// its primary spans with each stripe and ships it to the stripe's
	// server (rank s owns stripe s).  Stripe layout — and therefore every
	// buffer size below — is a pure function of the domains and ns, so
	// all ranks agree on it without negotiation.
	stripes := make([][]index.Grid, len(arrays))
	for i, a := range arrays {
		stripes[i] = pario.StripeGrids(a.Domain(), ns)
	}
	send := make([][]byte, np)
	for s := 0; s < ns; s++ {
		var buf []byte
		for i, a := range arrays {
			if !a.Dist().IsPrimaryRank(rank) {
				continue // replicated copies are identical; the primary ships
			}
			l := a.Local(ctx)
			inter := l.Grid().Intersect(stripes[i][s])
			if inter.Empty() {
				continue
			}
			buf = l.AppendPacked(buf, inter)
		}
		send[s] = buf
	}
	recv, err := ctx.Comm().Alltoallv(send)
	if err != nil {
		return -1, fmt.Errorf("ckpt: stripe exchange: %w", err)
	}

	// Phase two: the servers assemble their stripe in memory, checksum
	// it, and hand it to their I/O goroutine; the disk writes overlap the
	// parity chain, the checksum gather and the commit agreement below.
	var (
		srv       *pario.Server
		stripeBuf []byte
		myCRC     uint32
	)
	if rank < ns {
		stripeBuf = assembleStripe(ctx, arrays, stripes, recv, epoch, rank)
		myCRC = crc32.ChecksumIEEE(stripeBuf)
		srv = pario.StartServer(f, cfg, tr, rank)
		srv.Write(filepath.Join(staging, stripeFileName(rank)), stripeBuf)
		if opts.Redundancy == pario.RedundancyReplica {
			srv.Write(filepath.Join(staging, pario.ReplicaName(stripeFileName(rank))), stripeBuf)
		}
	}

	// Parity: a pipelined XOR chain across the server ranks (raw tag
	// 9101), zero-padded to the largest stripe; the last server writes
	// the folded result.
	var parityCRC uint32
	var paritySize int
	if opts.Redundancy == pario.RedundancyParity && rank < ns {
		maxSize := 0
		for s := 0; s < ns; s++ {
			if sz := stripeSize(arrays, stripes, s); sz > maxSize {
				maxSize = sz
			}
		}
		acc := make([]byte, maxSize)
		copy(acc, stripeBuf)
		ep, ccfg := ctx.Endpoint(), ctx.Comm().Config()
		if rank > 0 {
			p, err := msg.RecvRetry(ep, ccfg, tr, "ckpt-parity", rank-1, parityTag)
			if err != nil {
				return -1, fmt.Errorf("ckpt: parity chain: %w", err)
			}
			pario.XorInto(acc, p.Data)
		}
		if rank < ns-1 {
			if err := msg.SendRetry(ep, ccfg, tr, "ckpt-parity", rank+1, parityTag, acc); err != nil {
				return -1, fmt.Errorf("ckpt: parity chain: %w", err)
			}
		} else {
			parityCRC = crc32.ChecksumIEEE(acc)
			paritySize = maxSize
			srv.Write(filepath.Join(staging, parityFileName()), acc)
		}
	}

	// Gather integrity data while the servers are still writing, then
	// join them and agree on the outcome — no rank commits alone.
	sums, err := ctx.Comm().AllgatherInts([]int{int(myCRC), len(stripeBuf), int(parityCRC), paritySize})
	if err != nil {
		return -1, fmt.Errorf("ckpt: checksum gather: %w", err)
	}
	var writeErr error
	if srv != nil {
		writeErr = srv.Close()
	}
	if err := agree(ctx, writeErr); err != nil {
		return -1, fmt.Errorf("ckpt: writing epoch %d: %w", epoch, err)
	}

	// Rank 0 writes the manifest and commits with the staging rename,
	// then applies the retention policy.
	var commitErr error
	if rank == 0 {
		man := Manifest{
			Version: Version, Epoch: epoch, NP: np, Meta: meta, Arrays: metas,
			NS: ns, Redundancy: opts.Redundancy,
		}
		for s := 0; s < ns; s++ {
			man.Stripes = append(man.Stripes, FileMeta{
				Rank: s, Name: stripeFileName(s), Size: int64(sums[s][1]), CRC: uint32(sums[s][0]),
			})
		}
		if opts.Redundancy == pario.RedundancyParity {
			man.Parity = &FileMeta{
				Rank: ns - 1, Name: parityFileName(),
				Size: int64(sums[ns-1][3]), CRC: uint32(sums[ns-1][2]),
			}
		}
		b, err := json.MarshalIndent(&man, "", "  ")
		if err == nil {
			err = cfg.WriteFile(f, tr, rank, manifestPath(staging), b)
		}
		if err == nil {
			// The rename is the commit point: before it the epoch is an
			// ignorable .tmp directory, after it the manifest and every
			// checksummed stripe are in place.
			err = cfg.Rename(f, tr, rank, staging, filepath.Join(dir, epochDirName(epoch)))
		}
		commitErr = err
		if commitErr == nil && opts.Keep > 0 {
			pruneEpochs(f, dir, opts.Keep)
		}
	}
	if err := agree(ctx, commitErr); err != nil {
		return -1, fmt.Errorf("ckpt: committing epoch %d: %w", epoch, err)
	}
	return epoch, nil
}

// parityTag is the raw message tag of the parity XOR chain (the 9xxx
// range is reserved for protocol traffic outside array redistribution).
const parityTag = 9101

// prepareStaging (rank 0 only) creates dir, removes stale staging
// directories from interrupted runs, picks the next epoch number and
// creates its staging directory.
func prepareStaging(f pario.FS, cfg pario.Config, tr *trace.Tracer, dir string) (int, error) {
	if err := cfg.MkdirAll(f, tr, 0, dir); err != nil {
		return -1, err
	}
	if ents, err := f.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.IsDir() && stagingDirRe.MatchString(e.Name()) {
				// Best-effort GC of an interrupted checkpoint's staging
				// debris; a leftover under this epoch's own name is
				// cleared again below in any case.
				_ = f.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	latest, err := maxEpochDir(f, dir)
	if err != nil {
		return -1, err
	}
	epoch := latest + 1
	staging := filepath.Join(dir, stagingDirName(epoch))
	if err := f.RemoveAll(staging); err != nil {
		return -1, err
	}
	if err := cfg.MkdirAll(f, tr, 0, staging); err != nil {
		return -1, err
	}
	return epoch, nil
}

// pruneEpochs removes all but the newest keep committed epochs
// (best-effort: retention must never fail a checkpoint that already
// committed).
func pruneEpochs(f pario.FS, dir string, keep int) {
	epochs, err := epochsIn(f, dir)
	if err != nil {
		return
	}
	for _, n := range epochs[min(keep, len(epochs)):] {
		_ = f.RemoveAll(filepath.Join(dir, epochDirName(n)))
	}
}

// stripeSize is the exact byte size of stripe s: the header plus, per
// array, a u32 count and the packed values.  Every rank computes the
// same sizes without communicating.
func stripeSize(arrays []*darray.Array, stripes [][]index.Grid, s int) int {
	n := 20
	for i := range arrays {
		n += 4 + 8*stripes[i][s].Count()
	}
	return n
}

// assembleStripe builds stripe s's file image from the Alltoallv
// receive buffers: for every source rank, the intersection of that
// rank's recorded primary grid with the stripe grid says exactly which
// canonical positions its payload bytes land in.
func assembleStripe(ctx *machine.Ctx, arrays []*darray.Array, stripes [][]index.Grid, recv [][]byte, epoch, s int) []byte {
	buf := make([]byte, 0, stripeSize(arrays, stripes, s))
	buf = appendU32(buf, stripeMagic)
	buf = appendU32(buf, Version)
	buf = appendU32(buf, uint32(epoch))
	buf = appendU32(buf, uint32(s))
	buf = appendU32(buf, uint32(len(arrays)))
	offs := make([]int, len(arrays))
	for i := range arrays {
		buf = appendU32(buf, uint32(stripes[i][s].Count()))
		offs[i] = len(buf)
		buf = append(buf, make([]byte, 8*stripes[i][s].Count())...)
	}
	for r := 0; r < ctx.NP(); r++ {
		data := recv[r]
		off := 0
		for i, a := range arrays {
			d := a.Dist()
			if !d.IsPrimaryRank(r) {
				continue
			}
			inter := d.LocalGrid(r).Intersect(stripes[i][s])
			if inter.Empty() {
				continue
			}
			n := 8 * inter.Count()
			pario.Place(buf[offs[i]:offs[i]+8*stripes[i][s].Count()], data[off:off+n], inter, stripes[i][s])
			off += n
		}
	}
	return buf
}
