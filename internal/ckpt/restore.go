package ckpt

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"

	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/pario"
	"repro/internal/trace"
)

// RestoreResult reports what a restore did.
type RestoreResult struct {
	Manifest *Manifest
	// Resized is true when the checkpoint was written by a different
	// number of ranks than the restoring machine has.
	Resized bool
	// Repaired counts stripe reconstructions this rank performed while
	// reading — nonzero means the epoch was read in degraded mode and
	// healed in place.  Per-rank, informational.
	Repaired int
}

// Restore fills the given arrays from the newest verifiably complete
// epoch in dir with default I/O options (collective).  See RestoreOpts.
func Restore(ctx *machine.Ctx, dir string, arrays []*darray.Array) (*RestoreResult, error) {
	return RestoreOpts(ctx, dir, arrays, Options{})
}

// RestoreOpts fills the given arrays from the newest verifiably
// complete epoch in dir (collective).  Epoch selection distrusts the
// directory: an epoch whose manifest is unreadable, or whose data files
// are damaged beyond what its redundancy can reconstruct, is skipped
// and the next older one is tried — restore falls back epoch by epoch
// to the newest one that can actually be read.  Damaged stripes
// encountered while reading are reconstructed from redundancy and
// repaired in place (self-healing).
//
// Arrays are matched to the manifest by name; every manifest array must
// be present (extra live arrays are left untouched).  Each array is
// first re-associated with the restored distribution descriptor —
// replayed exactly when the surviving machine can host the recorded
// processor arrangement, re-factored over the surviving ranks otherwise
// (np-dependent S_BLOCK/B_BLOCK specifiers degrade to BLOCK) — and then
// filled with the recorded values.  Ghost areas are left stale; refresh
// them with ExchangeGhosts before stencil use.
func RestoreOpts(ctx *machine.Ctx, dir string, arrays []*darray.Array, opts Options) (*RestoreResult, error) {
	rank, np := ctx.Rank(), ctx.NP()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(np)
	f := opts.FS(rank)
	cfg := opts.IO
	tr := ctx.Tracer()

	// Rank 0 locates the newest usable epoch — verifying completeness
	// and falling back past damaged ones — and broadcasts the manifest
	// so every rank restores the same epoch even if a concurrent writer
	// commits meanwhile.
	var manBytes []byte
	var scanErr error
	if rank == 0 {
		epoch, man, err := latestUsable(f, cfg, tr, rank, dir)
		switch {
		case err != nil:
			scanErr = err
		case epoch < 0:
			scanErr = fmt.Errorf("ckpt: no committed checkpoint in %s", dir)
		default:
			manBytes, scanErr = json.Marshal(man)
		}
		if scanErr != nil {
			manBytes = nil
		}
	}
	manBytes, err := ctx.Comm().Bcast(0, manBytes)
	if err != nil {
		return nil, fmt.Errorf("ckpt: manifest broadcast: %w", err)
	}
	if len(manBytes) == 0 {
		if scanErr != nil {
			return nil, scanErr
		}
		return nil, fmt.Errorf("ckpt: no committed checkpoint in %s", dir)
	}
	var man Manifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, fmt.Errorf("ckpt: manifest decode: %w", err)
	}
	epochDir := filepath.Join(dir, epochDirName(man.Epoch))

	byName := make(map[string]*darray.Array, len(arrays))
	for _, a := range arrays {
		byName[a.Name()] = a
	}

	res := &RestoreResult{Manifest: &man, Resized: man.NP != np}

	// The two formats differ only in where the recorded bytes live: v1
	// keys payloads by writing rank (so the old distribution must be
	// replayed to know what each file holds), v2 by stripe of the
	// canonical file order (layout-independent).  Readers cache files so
	// each rank touches each file at most once per restore.
	var v1 *v1Reader
	var v2 *stripeReader
	if man.Version == VersionV1 {
		if len(man.Files) != man.NP {
			return nil, fmt.Errorf("ckpt: manifest lists %d files for %d ranks", len(man.Files), man.NP)
		}
		v1 = newV1Reader(f, cfg, tr, rank, epochDir, &man)
	} else {
		if man.NS <= 0 || len(man.Stripes) != man.NS {
			return nil, fmt.Errorf("ckpt: manifest lists %d stripes for NS=%d", len(man.Stripes), man.NS)
		}
		v2 = newStripeReader(f, cfg, tr, rank, epochDir, &man)
	}

	for ai, am := range man.Arrays {
		arr, ok := byName[am.Name]
		if !ok {
			return nil, fmt.Errorf("ckpt: checkpointed array %s is not declared in the restoring program", am.Name)
		}
		dom, err := domainOf(am)
		if err != nil {
			return nil, err
		}
		if !arr.Domain().Equal(dom) {
			return nil, fmt.Errorf("ckpt: array %s: domain %v in checkpoint, %v declared", am.Name, dom, arr.Domain())
		}

		// The destination distribution on the live machine: the recorded
		// arrangement when the sizes match exactly, a balanced
		// re-factorization over all np ranks otherwise.  Both directions
		// resize: a restore onto fewer ranks (shrink recovery) compacts
		// the arrangement, and a restore onto more ranks (expand
		// recovery after a join) spreads it so the new members own data
		// instead of idling.
		oldExt := am.Dist.TargetExtents
		newExt := oldExt
		if (virtualTarget{ext: oldExt}).Size() != np {
			newExt = balancedExtents(np, len(oldExt))
		}
		newMeta := am.Dist
		if !intsEqual(newExt, oldExt) {
			newMeta = remapDims(am.Dist, newExt)
		}
		procName := "$CKPT"
		for _, e := range newExt {
			procName += "x" + strconv.Itoa(e)
		}
		target := ctx.Machine().ProcsDim(procName, newExt...).Whole()
		type distOrErr struct {
			d   *dist.Distribution
			err error
		}
		neu := ctx.CollectiveOnce(func() any {
			typ, err := typeOf(newMeta)
			if err != nil {
				return distOrErr{nil, err}
			}
			d, err := dist.New(typ, dom, target)
			return distOrErr{d, err}
		}).(distOrErr)
		if neu.err != nil {
			return nil, fmt.Errorf("ckpt: array %s: rebuilding distribution: %w", am.Name, neu.err)
		}

		// Adopt the descriptor without moving the (stale) data, then fill
		// the owned spans from the recorded bytes.
		if err := arr.RedistributeTo(ctx, neu.d, darray.NoTransfer()); err != nil {
			return nil, fmt.Errorf("ckpt: array %s: %w", am.Name, err)
		}
		l := arr.Local(ctx)
		myGrid := l.Grid()

		var fillErr error
		if v2 != nil {
			fillErr = v2.fill(l, myGrid, am, ai, dom)
		} else {
			// v1: the old distribution, replayed over a virtual
			// arrangement of the recorded size.  Built once and shared
			// (SPMD) so its memoized ownership tables exist once.
			old := ctx.CollectiveOnce(func() any {
				d, err := replay(am.Dist, dom)
				return distOrErr{d, err}
			}).(distOrErr)
			if old.err != nil {
				return nil, fmt.Errorf("ckpt: array %s: %w", am.Name, old.err)
			}
			fillErr = v1.fill(l, myGrid, old.d, ai, man.NP)
		}
		if err := agree(ctx, fillErr); err != nil {
			return nil, fmt.Errorf("ckpt: array %s: restore: %w", am.Name, err)
		}
	}
	if v2 != nil {
		res.Repaired = v2.repaired
	}
	if err := ctx.Barrier(); err != nil {
		return nil, fmt.Errorf("ckpt: restore barrier: %w", err)
	}
	return res, nil
}

// stripeReader reads, verifies (and if need be reconstructs and heals)
// the stripe files of one format-2 epoch, parsing each into per-array
// payloads on first touch.
type stripeReader struct {
	f        pario.FS
	cfg      pario.Config
	tr       *trace.Tracer
	rank     int
	epochDir string
	man      *Manifest
	set      pario.StripeSet
	loaded   map[int][][]byte
	repaired int
}

func newStripeReader(f pario.FS, cfg pario.Config, tr *trace.Tracer, rank int, epochDir string, man *Manifest) *stripeReader {
	return &stripeReader{
		f: f, cfg: cfg, tr: tr, rank: rank, epochDir: epochDir, man: man,
		set:    man.stripeSet(epochDir),
		loaded: make(map[int][][]byte),
	}
}

// payloadsOf returns stripe s's per-array payloads, reading and healing
// the stripe file on first use.
func (sr *stripeReader) payloadsOf(s int) ([][]byte, error) {
	if p, ok := sr.loaded[s]; ok {
		return p, nil
	}
	data, repaired, err := sr.set.ReadStripe(sr.f, sr.cfg, sr.tr, sr.rank, s, true)
	if err != nil {
		return nil, err
	}
	if repaired {
		sr.repaired++
	}
	p, err := stripePayloads(data, sr.man, sr.epochDir, s)
	if err != nil {
		return nil, err
	}
	sr.loaded[s] = p
	return p, nil
}

// fill unpacks the spans of myGrid from the stripes it intersects.
func (sr *stripeReader) fill(l *darray.Local, myGrid index.Grid, am ArrayMeta, ai int, dom index.Domain) error {
	grids := pario.StripeGrids(dom, sr.man.NS)
	for s, sg := range grids {
		inter := myGrid.Intersect(sg)
		if inter.Empty() {
			continue
		}
		payloads, err := sr.payloadsOf(s)
		if err != nil {
			return err
		}
		payload := payloads[ai]
		if msg.Float64Count(payload) != sg.Count() {
			return fmt.Errorf("ckpt: array %s: stripe %d payload has %d values, grid has %d",
				am.Name, s, msg.Float64Count(payload), sg.Count())
		}
		if gridsEqual(inter, sg) && gridsEqual(inter, myGrid) {
			l.UnpackWire(myGrid, payload)
			continue
		}
		l.UnpackWire(inter, extract(payload, sg, inter))
	}
	return nil
}

// stripePayloads parses one stripe file's body into per-array payloads
// in manifest order, validating the header against the manifest.
func stripePayloads(data []byte, man *Manifest, epochDir string, s int) ([][]byte, error) {
	name := stripeFileName(s)
	if len(data) < 20 {
		return nil, fmt.Errorf("ckpt: %s/%s: truncated header", epochDir, name)
	}
	u32 := func(off int) int { return int(getU32(data, off)) }
	if u32(0) != stripeMagic || u32(4) != Version || u32(8) != man.Epoch || u32(12) != s {
		return nil, fmt.Errorf("ckpt: %s/%s: header mismatch", epochDir, name)
	}
	narr := u32(16)
	if narr != len(man.Arrays) {
		return nil, fmt.Errorf("ckpt: %s/%s: %d arrays recorded, manifest has %d", epochDir, name, narr, len(man.Arrays))
	}
	payloads := make([][]byte, narr)
	off := 20
	for i := 0; i < narr; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload table", epochDir, name)
		}
		n := u32(off)
		off += 4
		if off+8*n > len(data) {
			return nil, fmt.Errorf("ckpt: %s/%s: truncated payload %d", epochDir, name, i)
		}
		payloads[i] = data[off : off+8*n]
		off += 8 * n
	}
	return payloads, nil
}

// extract pulls the values at want's points (canonical order) out of a
// payload recorded in from's canonical enumeration order.  want must be a
// subset of from.
func extract(payload []byte, from, want index.Grid) []byte {
	// Column-major position strides over from's per-dimension counts,
	// dimension 0 innermost — the canonical enumeration of ForEachRun.
	strd := make([]int, from.Rank())
	mul := 1
	for k := range strd {
		strd[k] = mul
		mul *= from.Dims[k].Count()
	}
	var out []byte
	out, _ = msg.GrowFloat64s(out, want.Count())
	off := 0
	want.ForEachRun(func(p index.Point, r index.Run) bool {
		row := 0
		for k := 1; k < len(p); k++ {
			row += from.Dims[k].IndexOf(p[k]) * strd[k]
		}
		for i := r.Lo; i <= r.Hi; i += r.Stride {
			idx := row + from.Dims[0].IndexOf(i)
			msg.PutFloat64(out, off, msg.GetFloat64(payload, 8*idx))
			off += 8
		}
		return true
	})
	return out
}
