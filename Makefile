# Convenience targets for the Vienna Fortran reproduction.

GO ?= go

.PHONY: all build vet test race check check-fault check-recovery check-online check-redist check-expand check-io check-drain soak bench bench-smoke bench-overlap bench-redist bench-expand bench-io bench-drain examples experiments analyze clean

all: build check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static checks plus the race detector over the runtime packages — the
# SPMD engine is all goroutines, so data races are the bug class to gate
# on.  Part of the default target.
check: check-fault check-recovery check-online check-redist check-expand check-io check-drain bench-overlap bench-redist
	$(GO) vet ./...
	$(GO) test -race ./internal/...

# The memory-bounded redistribution matrix: planner candidates simulated
# bit-identical to the direct alltoallv across distribution crossings,
# measured peak-wire-bytes <= budget end to end (array 8x the budget),
# exact byte/message parity on the unbounded path, the symmetric
# no-plan failure, the np-keyed schedule cache, and the streaming
# collective + wire gauge — all under the race detector.
check-redist:
	$(GO) test -race -run 'TestPlan|TestRedistributeMemBudget|TestRedistributeUnboundedExactCounts|TestRedistributeBudgetInfeasible|TestCacheKeyedOnView|TestParseBudget|TestWireGauge|TestAlltoallvStream' \
	  ./internal/redist ./internal/darray ./internal/msg

# The elastic scale-OUT matrix: the join protocol (admit, reject-by-
# timeout, a join racing a death, two deaths in one liveness window),
# expand-restores onto more ranks, the epoch-headroom and budget-parse
# overflow guards, physical-rank gauge attribution across epochs, the
# grow/shrink policy arithmetic, and the end-to-end apps that admit a
# joiner mid-run and finish bit-exact — all under the race detector.
check-expand:
	$(GO) test -race -run 'TestJoin|TestAdmit|TestRegroupTwoDead|TestExpand|TestRestoreOnto|TestFoldTagBoundary|TestParseBudgetOverflow|TestWireGaugeCrossEpoch|TestStepTime|TestRecommend|TestFromSummary|TestRedistCost' \
	  ./internal/machine ./internal/ckpt ./internal/msg ./internal/redist ./internal/darray ./internal/scale ./internal/apps

# The online-recovery matrix: membership-epoch regroup agreement,
# epoch-folded tag views, typed epoch revocation, per-message CRC32C
# integrity (bitflip -> named transport error, zero panics), and the
# kill-a-rank-mid-run apps that regroup and finish in the same process,
# bit-for-bit against the serial reference — all under the race detector.
check-online:
	$(GO) test -race -run 'TestOnlineRecover|TestOnlineBitflip|TestOnlineIntegrity|TestSoakOnline|TestRegroup|TestEpochRevoked|TestExcluded|TestIntegrity|TestView|TestFoldTag' \
	  ./internal/msg ./internal/machine ./internal/apps

# The kill-a-rank matrix: checkpoint round-trips across every
# distribution kind (incl. shrink restores), heartbeat failure
# detection, goroutine-leak gates, and the end-to-end kill-and-recover
# apps — all under the race detector.
check-recovery:
	$(GO) test -race -run 'TestRoundTrip|TestRestoreOnto|TestEpochs|TestCorrupt|TestInterrupted|TestLiveness|TestSurvivors|TestErroringRun|TestPanickingRun|TestADIKillAndRecover|TestADIRecover|TestSmoothingRecover|TestPICRecover|TestDistributeCheckpointRecover' \
	  ./internal/ckpt ./internal/machine ./internal/apps ./internal/interp

# The straggler-defense matrix: the voluntary-drain protocol (basic
# drain, drain racing a real death in one transition, drained-rank
# goroutine leak gates), the health scorer's hysteresis and EWMA
# arithmetic, the slow transport fault and seeded backoff jitter, the
# straggler policy model (weighted bounds, fair shares, drain vs
# rebalance break-even), and the end-to-end apps matrix — chan and TCP
# × rebalance and drain, ADI/PIC/smoothing, bit-exact across the drain
# epoch transition — all under the race detector.
check-drain:
	$(GO) test -race -run 'TestDrain|TestHealth|TestHysteresis|TestSlowFault|TestBackoffJitter|TestStraggler|TestWeightedBounds|TestFairShares|TestDecisionStrings' \
	  ./internal/machine ./internal/health ./internal/msg ./internal/scale ./internal/apps

# Bounded chaos run: seeded-random ADI shapes killed at seeded-random
# points by a seeded-random permanently silent rank, recovered — offline
# on the survivors (TestSoakChaos) and online in the same process via
# membership-epoch regroup (TestSoakOnline) — and checked against the
# serial reference (8/6 rounds; the plain test suite runs 2 of each).
soak:
	SOAK=1 $(GO) test -race -run 'TestSoakChaos|TestSoakOnline' -count=1 -v ./internal/apps

# The crash-safe parallel-I/O matrix: the FaultFS schedules (eio/short/
# torn/bitrot/stall, seeded prob, per-rank counters), stripe assembly and
# parity/replica reconstruction, the crash-during-Save abort stages (no
# partial epoch ever commits), the disk-damage x restore matrix on both
# transports, v1 compatibility, retention pruning, epoch fallback, the
# scrub pass, and the degraded end-to-end apps — all under the race
# detector (the I/O servers and retry paths add goroutines).
check-io:
	$(GO) test -race -count=1 ./internal/pario ./internal/ckpt
	$(GO) test -race -count=1 -run 'Degraded|DoubleDamage' ./internal/apps

# The fault-injection matrix: every collective pattern under injected
# send errors, delivery delays, and dropped frames, on both transports,
# with the race detector on (the retry/deadline paths add goroutines).
check-fault:
	$(GO) test -race -run 'TestFaultMatrix|TestFault|TestCollectiveTimeout|TestCollectiveHeals|TestCollectiveTagNeverWraps|TestRecvTimeout' ./internal/msg ./internal/darray

bench:
	$(GO) test -bench=. -benchmem .

# Quick allocation/latency regression sweep over the data-movement hot
# paths: E3 (smoothing ghost exchange), E4 (DISTRIBUTE), and the wire
# codec micros.  Results land in BENCH_SMOKE.json — the committed
# BENCH_PR2.json is the frozen PR-2 baseline to diff against, not a
# file this target overwrites.
bench-smoke:
	( $(GO) test -run '^$$' -bench 'BenchmarkSmoothing|BenchmarkRedistribute' -benchtime 1x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCodec' -benchtime 100x -benchmem ./internal/msg ) \
	| $(GO) run ./cmd/benchjson -o BENCH_SMOKE.json

# Sync-vs-overlap smoothing comparison: the same shapes timed with the
# synchronous exchange+sweep loop and with the one-sided overlapped loop
# (interior while the halo puts fly, no per-step barriers).  Each variant
# first validates bit-identity against the serial reference (maxerr must
# be exactly 0); results land in BENCH_PR6.json for diffing.
bench-overlap:
	$(GO) test -run '^$$' -bench 'BenchmarkSmoothingOverlap' -benchtime 30x . \
	| $(GO) run ./cmd/benchjson -o BENCH_PR6.json

# Redistribution under a memory budget: the E4 DISTRIBUTE pairs plus
# the budgeted variant (unbounded vs array/8 budget).  The benchmark
# itself asserts measured peak wire bytes <= budget; results land in
# BENCH_PR7.json for diffing against the BENCH_PR2.json redistribute
# baselines.
bench-redist:
	$(GO) test -run '^$$' -bench 'BenchmarkRedistribute$$|BenchmarkRedistributeBudget' -benchtime 200x . \
	| $(GO) run ./cmd/benchjson -o BENCH_PR7.json

# Elastic scale-out: the mid-run join + expand-replay path timed next
# to the same problem run statically at the grown size (the benchmark
# asserts bit-exactness and admission on every run).  Results land in
# BENCH_PR8.json for diffing.
bench-expand:
	$(GO) test -run '^$$' -bench 'BenchmarkExpandADI' -benchtime 5x . \
	| $(GO) run ./cmd/benchjson -o BENCH_PR8.json

# Crash-safe parallel I/O: the striped two-phase collective writer next
# to the per-rank flat layout (the v1-era shape), the parity surcharge,
# and restore from a clean epoch vs restore that reconstructs a deleted
# stripe from parity and heals it on disk.  Results land in
# BENCH_PR9.json for diffing.
bench-io:
	$(GO) test -run '^$$' -bench 'BenchmarkCkptIO' -benchtime 20x -benchmem . \
	| $(GO) run ./cmd/benchjson -o BENCH_PR9.json

# Straggler defense: the same 8×-slowed dynamic ADI timed with
# mitigation off, with throughput-weighted rebalancing, and with
# voluntary drain (every run asserts the straggler was classified
# Degraded and the result stays bit-exact).  Results land in
# BENCH_PR10.json for diffing — mitigation should measurably beat the
# do-nothing baseline.
bench-drain:
	$(GO) test -run '^$$' -bench 'BenchmarkStraggler' -benchtime 5x . \
	| $(GO) run ./cmd/benchjson -o BENCH_PR10.json

# Regenerate the EXPERIMENTS.md tables (E1-E4).
experiments:
	$(GO) run ./cmd/vfbench

# The paper's compiler-analysis artifacts (E6).
analyze:
	$(GO) run ./cmd/vfanalyze -demo fig1
	$(GO) run ./cmd/vfanalyze -demo fig2
	$(GO) run ./cmd/vfanalyze -demo example4

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adi -nx 64 -ny 64 -iters 2
	$(GO) run ./examples/pic -ncell 128 -steps 40
	$(GO) run ./examples/smoothing -n 128
	$(GO) run ./examples/dcase
	$(GO) run ./examples/connect

clean:
	$(GO) clean ./...
