package vienna

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - pipeline chunking in the static ADI baseline (latency/parallelism
//     trade-off of the "compiler-embedded" communication);
//   - schedule-aware alltoallv vs. the generic size-exchanging variant
//     (the §3.2.2 symmetric-schedule optimization);
//   - schedule cache on repeated redistribution (first vs. later rounds).

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
)

func BenchmarkADIPipelineChunk(b *testing.B) {
	for _, chunk := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			var last apps.ADIResult
			for i := 0; i < b.N; i++ {
				res, err := apps.RunADI(apps.ADIConfig{
					NX: 128, NY: 128, Iters: 2, P: 4, Mode: apps.ADIStaticCols,
					ChunkRows: chunk, Alpha: benchAlpha, Beta: benchBeta,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.SweepMsgs), "sweep-msgs/run")
			b.ReportMetric(last.ModelTime*1e3, "model-ms/run")
		})
	}
}

func BenchmarkAlltoallvSchedAblation(b *testing.B) {
	run := func(b *testing.B, sched bool) {
		m := machine.New(4)
		defer m.Close()
		payload := msg.EncodeFloat64s(make([]float64, 512))
		if err := m.Run(func(ctx *machine.Ctx) error {
			np, rank := ctx.NP(), ctx.Rank()
			send := make([][]byte, np)
			recvFrom := make([]bool, np)
			right := (rank + 1) % np
			left := (rank - 1 + np) % np
			send[right] = payload
			recvFrom[left] = true
			if ctx.Rank() == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				var err error
				if sched {
					_, err = ctx.Comm().AlltoallvSched(send, recvFrom)
				} else {
					_, err = ctx.Comm().Alltoallv(send)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		sn := m.Stats().Snapshot()
		b.ReportMetric(float64(sn.TotalMsgs())/float64(b.N), "msgs/op")
	}
	b.Run("generic", func(b *testing.B) { run(b, false) })
	b.Run("schedule-aware", func(b *testing.B) { run(b, true) })
}

func BenchmarkRedistributeCacheAblation(b *testing.B) {
	// first round (cold schedules, cache misses) vs steady state: measure
	// one cold build+exchange against the average of many warm rounds.
	mkDists := func(m *machine.Machine) (*dist.Distribution, *dist.Distribution) {
		tg := m.ProcsDim("P", 4).Whole()
		dom := index.Dim(1 << 14)
		return dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg),
			dist.MustNew(dist.NewType(dist.CyclicDim(4)), dom, tg)
	}
	b.Run("coldSchedule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.New(4)
			d1, d2 := mkDists(m)
			for r := 0; r < 4; r++ {
				s := d1.LocalGrid(r)
				for peer := 0; peer < 4; peer++ {
					_ = s.Intersect(d2.LocalGrid(peer))
				}
			}
			m.Close()
		}
	})
	b.Run("warmExchangeOnly", func(b *testing.B) {
		res, err := apps.RunRedistCost(apps.RedistCostConfig{
			N0: 1 << 14, P: 4, Rounds: maxI(b.N, 2),
			From: []dist.DimSpec{dist.BlockDim()},
			To:   []dist.DimSpec{dist.CyclicDim(4)},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WallPerRound.Nanoseconds()), "ns/redist")
	})
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
