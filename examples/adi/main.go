// Command adi is the paper's Figure 1 — an ADI iteration written with
// dynamic data distributions — transcribed to the Go API:
//
//	PARAMETER (NX = 100, NY = 100)
//	REAL U(NX, NY), F(NX, NY) DIST (:, BLOCK)
//	REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)), DIST (:, BLOCK)
//
//	CALL RESID( V, U, F, NX, NY)
//	DO J = 1, NY            ! sweep over x-lines
//	  CALL TRIDIAG( V(:, J), NX)
//	ENDDO
//	DISTRIBUTE V :: ( BLOCK, : )
//	DO I = 1, NX            ! sweep over y-lines
//	  CALL TRIDIAG( V(I, :), NY)
//	ENDDO
//
// Both sweeps execute with purely local accesses; all communication is
// confined to the DISTRIBUTE statement (paper §4).
package main

import (
	"flag"
	"fmt"
	"log"

	vienna "repro"
	"repro/internal/kernels"
)

func main() {
	nx := flag.Int("nx", 100, "grid extent in x")
	ny := flag.Int("ny", 100, "grid extent in y")
	np := flag.Int("p", 4, "number of processors")
	iters := flag.Int("iters", 3, "ADI iterations")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON trace to FILE and print the per-phase summary")
	flag.Parse()

	var mopts []vienna.MachineOption
	var tr *vienna.Tracer
	if *traceFile != "" {
		tr = vienna.NewTracer(*np)
		mopts = append(mopts, vienna.WithTrace(tr))
	}
	m := vienna.NewMachine(*np, mopts...)
	defer m.Close()
	e := vienna.NewEngine(m)
	dom := vienna.Dim(*nx, *ny)

	colDist := vienna.DistSpec{Type: vienna.NewType(vienna.Elided(), vienna.Block())}

	err := m.Run(func(ctx *vienna.Ctx) error {
		// REAL U, F DIST(:, BLOCK) — with overlap areas for RESID's
		// nearest-neighbour accesses.
		u := e.MustDeclare(ctx, vienna.Decl{Name: "U", Domain: dom, Static: &colDist, Ghost: []int{1, 1}})
		f := e.MustDeclare(ctx, vienna.Decl{Name: "F", Domain: dom, Static: &colDist})
		// REAL V DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST(:,BLOCK)
		v := e.MustDeclare(ctx, vienna.Decl{
			Name: "V", Domain: dom, Dynamic: true,
			Range: vienna.Range{
				vienna.NewPattern(vienna.PElided(), vienna.PBlock()),
				vienna.NewPattern(vienna.PBlock(), vienna.PElided()),
			},
			Init: &colDist,
		})

		u.FillFunc(ctx, func(p vienna.Point) float64 { return float64((p[0] + 2*p[1]) % 9) })
		f.FillFunc(ctx, func(p vienna.Point) float64 { return 1.0 })
		ctx.Barrier()

		for it := 0; it < *iters; it++ {
			if it > 0 {
				// back to (:, BLOCK) for the next x-sweep
				e.MustDistribute(ctx, []*vienna.Array{v}, vienna.DimsOf(vienna.Elided(), vienna.Block()))
			}
			// CALL RESID(V, U, F): V(i,j) = F - (4U - neighbours).  The
			// refresh of U's overlap areas is asynchronous: the halos fly
			// as one-sided puts while the interior points (whose stencil
			// reads no ghost cell) are updated, and only the segment-edge
			// points wait for the exchange to complete.
			vienna.PhaseBegin(ctx, "resid")
			h, err := u.StartExchangeAllGhosts(ctx)
			if err != nil {
				return err
			}
			if err := resid(ctx, v, u, f, h); err != nil {
				return err
			}
			ctx.Barrier()
			vienna.PhaseEnd(ctx, "resid")

			// x-line sweep: every column V(:,J) is local under (:,BLOCK)
			vienna.PhaseBegin(ctx, "x-sweep")
			sweepLocal(ctx, v, 0)
			ctx.Barrier()
			vienna.PhaseEnd(ctx, "x-sweep")

			// DISTRIBUTE V :: (BLOCK, :)
			e.MustDistribute(ctx, []*vienna.Array{v}, vienna.DimsOf(vienna.Block(), vienna.Elided()))

			// y-line sweep: every row V(I,:) is local under (BLOCK,:)
			vienna.PhaseBegin(ctx, "y-sweep")
			sweepLocal(ctx, v, 1)
			ctx.Barrier()
			vienna.PhaseEnd(ctx, "y-sweep")
		}

		total, err := v.DArray().ReduceSum(ctx)
		if err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			fmt.Printf("ADI %dx%d on %d processors, %d iterations\n", *nx, *ny, *np, *iters)
			fmt.Printf("final V distribution: %v (redistributed %d times)\n", v.DistType(), v.Epoch())
			fmt.Printf("checksum(V) = %.6f\n", total)
			hits, misses := v.DArray().ScheduleCacheStats()
			fmt.Printf("redistribution schedule cache: %d hits / %d misses\n", hits, misses)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sn := m.Stats().Snapshot()
	fmt.Printf("traffic: %d data messages, %d bytes (all from DISTRIBUTE + ghost refresh)\n",
		sn.TotalDataMsgs(), sn.TotalBytes())
	if tr != nil {
		if err := tr.WriteJSONFile(*traceFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
		fmt.Print(tr.Summarize().String())
	}
}

// resid computes V = F - A(U) on locally owned points, overlapping U's
// in-flight ghost exchange h with the interior update: points whose
// stencil stays inside the owned segment are computed first, h.Wait()
// publishes the halos, and the segment-edge points finish the sweep.
// resid only reads U, so the single-buffer split is safe — inbound puts
// touch only U's ghost cells, which the interior pass never reads.
func resid(ctx *vienna.Ctx, v, u, f *vienna.Array, h *vienna.GhostHandle) error {
	lu, lf, lv := u.Local(ctx), f.Local(ctx), v.Local(ctx)
	dom := v.Domain()
	lo, hi, ok := lu.Segment()
	update := func(p vienna.Point, val *float64) {
		i, j := p[0], p[1]
		if i == 1 || i == dom.Hi[0] || j == 1 || j == dom.Hi[1] {
			*val = 0
			return
		}
		*val = lf.At(p) - (4*lu.At(p) -
			lu.At(vienna.Point{i - 1, j}) - lu.At(vienna.Point{i + 1, j}) -
			lu.At(vienna.Point{i, j - 1}) - lu.At(vienna.Point{i, j + 1}))
	}
	// A point is interior when every stencil neighbour is owned (sides on
	// the global boundary have no ghost margin to wait for).
	interior := func(p vienna.Point) bool {
		return ok &&
			(lo[0] <= 1 || p[0] > lo[0]) && (hi[0] >= dom.Hi[0] || p[0] < hi[0]) &&
			(lo[1] <= 1 || p[1] > lo[1]) && (hi[1] >= dom.Hi[1] || p[1] < hi[1])
	}
	lv.ForEachOwned(func(p vienna.Point, val *float64) {
		if interior(p) {
			update(p, val)
		}
	})
	if err := h.Wait(); err != nil {
		return err
	}
	lv.ForEachOwned(func(p vienna.Point, val *float64) {
		if !interior(p) {
			update(p, val)
		}
	})
	return nil
}

// sweepLocal runs TRIDIAG along dimension dim on every locally held line.
func sweepLocal(ctx *vienna.Ctx, v *vienna.Array, dim int) {
	l := v.Local(ctx)
	alloc := l.AllocShape()
	strd := l.Stride()
	other := 1 - dim
	if alloc[dim] == 0 || alloc[other] == 0 {
		return
	}
	scratch := make([]float64, alloc[dim])
	for li := 0; li < alloc[other]; li++ {
		kernels.TridiagStrided(l.Data(), li*strd[other], strd[dim], alloc[dim], -1, 4, -1, scratch)
	}
}
