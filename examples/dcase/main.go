// Command dcase executes the paper's Example 4 — the DCASE construct —
// showing how the executed arm tracks the arrays' current distributions
// as DISTRIBUTE statements change them at run time.
//
//	SELECT DCASE (B1,B2,B3)
//	  CASE (BLOCK),(BLOCK),(CYCLIC(2),CYCLIC)
//	    a1
//	  CASE B1: (CYCLIC), B3:( BLOCK, *))
//	    a2
//	  CASE B3:( BLOCK, CYCLIC)
//	    a3
//	  CASE DEFAULT
//	    a4
//	END SELECT
package main

import (
	"fmt"
	"log"

	vienna "repro"
)

func main() {
	const np = 4
	m := vienna.NewMachine(np)
	defer m.Close()
	e := vienna.NewEngine(m)

	err := m.Run(func(ctx *vienna.Ctx) error {
		r := m.ProcsDim("R", 2, 2)
		b1 := e.MustDeclare(ctx, vienna.Decl{Name: "B1", Domain: vienna.Dim(16), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Block())}})
		b2 := e.MustDeclare(ctx, vienna.Decl{Name: "B2", Domain: vienna.Dim(16), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Block())}})
		b3 := e.MustDeclare(ctx, vienna.Decl{Name: "B3", Domain: vienna.Dim(16, 16), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Cyclic(2), vienna.Cyclic(1)), Target: r.Whole()}})

		runDCase := func(when string) error {
			if ctx.Rank() != 0 {
				return nil
			}
			arm, err := vienna.Select(b1, b2, b3).
				Case(func() error { fmt.Println("  -> a1"); return nil },
					vienna.P(vienna.NewPattern(vienna.PBlock())),
					vienna.P(vienna.NewPattern(vienna.PBlock())),
					vienna.P(vienna.NewPattern(vienna.PCyclic(2), vienna.PCyclic(1)))).
				Case(func() error { fmt.Println("  -> a2"); return nil },
					vienna.On("B1", vienna.NewPattern(vienna.PCyclic(1))),
					vienna.On("B3", vienna.NewPattern(vienna.PBlock(), vienna.PAny()))).
				Case(func() error { fmt.Println("  -> a3"); return nil },
					vienna.On("B3", vienna.NewPattern(vienna.PBlock(), vienna.PCyclic(1)))).
				Default(func() error { fmt.Println("  -> a4 (DEFAULT)"); return nil }).
				Run()
			if err != nil {
				return err
			}
			fmt.Printf("%s: B1=%v B2=%v B3=%v matched arm %d\n",
				when, b1.DistType(), b2.DistType(), b3.DistType(), arm+1)
			return nil
		}

		if err := runDCase("initial"); err != nil {
			return err
		}
		ctx.Barrier()

		// DISTRIBUTE B1 :: (CYCLIC); DISTRIBUTE B3 :: (BLOCK, CYCLIC(7))
		e.MustDistribute(ctx, []*vienna.Array{b1}, vienna.DimsOf(vienna.Cyclic(1)))
		e.MustDistribute(ctx, []*vienna.Array{b3},
			vienna.DimsOf(vienna.Block(), vienna.Cyclic(7)).To(r.Whole()))
		if err := runDCase("after DISTRIBUTE B1::(CYCLIC), B3::(BLOCK,CYCLIC(7))"); err != nil {
			return err
		}
		ctx.Barrier()

		// DISTRIBUTE B3 :: (BLOCK, CYCLIC)
		e.MustDistribute(ctx, []*vienna.Array{b3},
			vienna.DimsOf(vienna.Block(), vienna.Cyclic(1)).To(r.Whole()))
		e.MustDistribute(ctx, []*vienna.Array{b1}, vienna.DimsOf(vienna.Block()))
		if err := runDCase("after DISTRIBUTE B3::(BLOCK,CYCLIC), B1::(BLOCK)"); err != nil {
			return err
		}
		ctx.Barrier()

		// nothing matches -> DEFAULT
		e.MustDistribute(ctx, []*vienna.Array{b3},
			vienna.DimsOf(vienna.Cyclic(1), vienna.Cyclic(1)).To(r.Whole()))
		return runDCase("after DISTRIBUTE B3::(CYCLIC,CYCLIC)")
	})
	if err != nil {
		log.Fatal(err)
	}
}
