// Command connect demonstrates the connect equivalence classes of §2.3 —
// the structured alternative to redistributing related arrays one by one:
//
//   - B is the primary of C(B) = {B, A1, A2}: A1 via distribution
//     extraction (CONNECT (=B)), A2 via a transposing alignment;
//   - one DISTRIBUTE statement moves the whole class, keeping the
//     connections invariant;
//   - NOTRANSFER(A1) re-derives A1's access function without moving its
//     data — what a program does when A1's contents are about to be
//     overwritten anyway ("Data motion is suppressed where data flow
//     analysis, or a NOTRANSFER specification, permits", §3.2.2).
package main

import (
	"fmt"
	"log"

	vienna "repro"
)

func main() {
	const n, np = 8, 4
	m := vienna.NewMachine(np)
	defer m.Close()
	e := vienna.NewEngine(m)

	err := m.Run(func(ctx *vienna.Ctx) error {
		g := m.ProcsDim("G", 2, 2)
		b := e.MustDeclare(ctx, vienna.Decl{
			Name: "B", Domain: vienna.Dim(n, n), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Block(), vienna.Block()), Target: g.Whole()},
		})
		a1 := e.MustDeclare(ctx, vienna.Decl{
			Name: "A1", Domain: vienna.Dim(n, n), Dynamic: true, ConnectTo: "B",
		})
		a2 := e.MustDeclare(ctx, vienna.Decl{
			Name: "A2", Domain: vienna.Dim(n, n), Dynamic: true, ConnectTo: "B",
			Align: &vienna.Alignment{Maps: []vienna.AxisMap{vienna.Axis(1), vienna.Axis(0)}},
		})
		b.FillFunc(ctx, func(p vienna.Point) float64 { return float64(10*p[0] + p[1]) })
		a1.FillFunc(ctx, func(p vienna.Point) float64 { return float64(-(10*p[0] + p[1])) })
		a2.FillFunc(ctx, func(p vienna.Point) float64 { return 0.5 * float64(10*p[0]+p[1]) })
		ctx.Barrier()

		if ctx.Rank() == 0 {
			fmt.Println("class C(B):")
			for _, mbr := range b.ClassMembers() {
				fmt.Printf("  %s: %v\n", mbr.Name(), mbr.DistType())
			}
			fmt.Printf("alignment invariant: owner A2(3,5) = %d, owner B(5,3) = %d\n",
				a2.Dist().Owner(vienna.Point{3, 5}), b.Dist().Owner(vienna.Point{5, 3}))
		}
		ctx.Barrier()

		// One DISTRIBUTE moves the whole class; A1's data stays put.
		base := m.Stats().Snapshot()
		e.MustDistribute(ctx, []*vienna.Array{b},
			vienna.DimsOf(vienna.Cyclic(1), vienna.Block()).To(g.Whole()), vienna.NoTransfer(a1))
		ctx.Barrier()
		if ctx.Rank() == 0 {
			d := m.Stats().Snapshot().Sub(base)
			fmt.Printf("\nafter DISTRIBUTE B :: (CYCLIC,BLOCK) NOTRANSFER(A1):\n")
			for _, mbr := range b.ClassMembers() {
				fmt.Printf("  %s: %v (epoch %d)\n", mbr.Name(), mbr.DistType(), mbr.Epoch())
			}
			fmt.Printf("  B(3,5) = %v (moved), A2 still mirrors B through the alignment\n", b.Get(ctx, 3, 5))
			fmt.Printf("  traffic for the class move: %d data messages, %d bytes\n",
				d.TotalDataMsgs(), d.TotalBytes())
			fmt.Printf("  alignment invariant still holds: %v\n",
				a2.Dist().Owner(vienna.Point{3, 5}) == b.Dist().Owner(vienna.Point{5, 3}))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
