// Command smoothing demonstrates the first §4 use case: choosing the data
// distribution *at run time* from the grid size (an input parameter) and
// the executing machine's characteristics ($NP, message startup α, per-
// byte cost β):
//
//	"A column distribution of the N × N grid will give rise to 2
//	 messages per processor, each of size N, per computation step.  On
//	 the other hand, if the grid is distributed by blocks in two
//	 dimensions across a p² processor array, then each computation step
//	 requires 4 messages of size N/p each ... the ratio N/p will
//	 determine the most appropriate distribution."
//
// The grid is DYNAMIC; after the decision the program issues a single
// DISTRIBUTE and the smoothing loop runs with only ghost-area exchanges.
// A DCASE construct then dispatches on the chosen distribution.
package main

import (
	"flag"
	"fmt"
	"log"

	vienna "repro"
	"repro/internal/apps"
)

func main() {
	n := flag.Int("n", 256, "grid size N (NxN)")
	np := flag.Int("p", 4, "number of processors (square for 2-D blocks)")
	steps := flag.Int("steps", 10, "smoothing steps")
	alpha := flag.Float64("alpha", 1e-4, "machine message startup (s)")
	beta := flag.Float64("beta", 1e-9, "machine per-byte cost (s)")
	flag.Parse()

	// The §4 runtime decision.
	mode := apps.ChooseSmoothingDist(*n, *np, *alpha, *beta)
	cc, cb := apps.SmoothModelCost(*n, *np, *alpha, *beta)
	fmt.Printf("N=%d, P=%d, alpha=%.1e, beta=%.1e\n", *n, *np, *alpha, *beta)
	fmt.Printf("modeled cost/step: columns %.3e s, 2-D blocks %.3e s -> choose %v\n", cc, cb, mode)

	res, err := apps.RunSmoothing(apps.SmoothConfig{
		N: *n, Steps: *steps, P: *np, Mode: mode,
		Alpha: *alpha, Beta: *beta, Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d steps under %v: %.0f msgs/proc/step, %.0f bytes/proc/step\n",
		*steps, res.Mode, res.MsgsPerProcStep, res.BytesPerProcStep)
	fmt.Printf("modeled time %.4fs, wall %v, max deviation from serial %.2e\n",
		res.ModelTime, res.Wall, res.MaxErr)

	// The same decision expressed as a DCASE over the declared array —
	// what a Vienna Fortran program does after the DISTRIBUTE.
	m := vienna.NewMachine(*np)
	defer m.Close()
	e := vienna.NewEngine(m)
	err = m.Run(func(ctx *vienna.Ctx) error {
		spec := &vienna.DistSpec{Type: vienna.NewType(vienna.Elided(), vienna.Block())}
		if mode == apps.SmoothBlock2D {
			q := 0
			for q*q < *np {
				q++
			}
			g := m.ProcsDim("G", q, q)
			spec = &vienna.DistSpec{Type: vienna.NewType(vienna.Block(), vienna.Block()), Target: g.Whole()}
		}
		grid := e.MustDeclare(ctx, vienna.Decl{
			Name: "GRID", Domain: vienna.Dim(*n, *n), Dynamic: true, Init: spec,
		})
		if ctx.Rank() != 0 {
			return nil
		}
		_, err := vienna.Select(grid).
			Case(func() error {
				fmt.Println("DCASE: column algorithm selected — 2 shift messages per step")
				return nil
			}, vienna.P(vienna.NewPattern(vienna.PElided(), vienna.PBlock()))).
			Case(func() error {
				fmt.Println("DCASE: 2-D block algorithm selected — 4 face messages per step")
				return nil
			}, vienna.P(vienna.NewPattern(vienna.PBlock(), vienna.PBlock()))).
			Default(func() error {
				fmt.Println("DCASE: unexpected distribution")
				return nil
			}).Run()
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
}
