// Command pic is the paper's Figure 2 — the outermost level of a
// particle-in-cell code with B_BLOCK load balancing — transcribed to the
// Go API:
//
//	PARAMETER (NCELL = ..., NPART = ...)
//	INTEGER BOUNDS($NP)
//	REAL FIELD(NCELL, NPART, ...) DYNAMIC, DIST( BLOCK, :, :)
//
//	CALL initpos(FIELD, ...)
//	CALL balance(BOUNDS, FIELD, ...)
//	DISTRIBUTE FIELD :: B_BLOCK (BOUNDS)
//	DO k = 1, MAX_TIME
//	  CALL update_field(FIELD, ...)
//	  CALL update_part(FIELD, ...)
//	  IF (MOD(k,10) .EQ. 0 .AND. rebalance() ) THEN
//	    CALL balance(BOUNDS, FIELD, ...)
//	    DISTRIBUTE FIELD :: B_BLOCK (BOUNDS)
//	  ENDIF
//	ENDDO
//
// Run with -rebalance=false to watch the static BLOCK distribution's load
// balance degrade as particles drift (§4: "the motion of particles during
// the simulation may lead to a severe load imbalance").
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
)

func main() {
	ncell := flag.Int("ncell", 256, "number of cells")
	steps := flag.Int("steps", 60, "time steps")
	np := flag.Int("p", 4, "number of processors")
	rebalance := flag.Bool("rebalance", true, "enable B_BLOCK rebalancing (Figure 2)")
	drift := flag.Float64("drift", 0.25, "fraction of particles drifting per step")
	flag.Parse()

	res, err := apps.RunPIC(apps.PICConfig{
		NCell: *ncell, Steps: *steps, P: *np,
		Rebalance: *rebalance, DriftFrac: *drift,
	})
	if err != nil {
		log.Fatal(err)
	}

	mode := "static BLOCK"
	if *rebalance {
		mode = "B_BLOCK(BOUNDS), rebalanced every 10 steps"
	}
	fmt.Printf("PIC: %d cells on %d processors, %d steps, %s\n", *ncell, *np, *steps, mode)
	fmt.Printf("particles: %.0f -> %.0f (conserved: %v)\n",
		res.ParticlesStart, res.ParticlesEnd, res.ParticlesStart == res.ParticlesEnd)
	fmt.Printf("load imbalance (max/avg particles per processor):\n")
	for k := 0; k < len(res.ImbalanceSeries); k += 10 {
		fmt.Printf("  step %3d: %.3f\n", k+1, res.ImbalanceSeries[k])
	}
	fmt.Printf("  final:    %.3f (peak %.3f, mean %.3f)\n",
		res.FinalImbalance, res.PeakImbalance, res.MeanImbalance)
	fmt.Printf("redistributions: %d (%d bytes moved by DISTRIBUTE)\n", res.Redistributions, res.RedistBytes)
	fmt.Printf("wall time: %v\n", res.Wall)
}
