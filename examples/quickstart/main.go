// Command quickstart is a minimal tour of the Vienna Fortran dynamic
// distribution API: declare arrays (static and DYNAMIC, with RANGE and
// CONNECT), inspect ownership, execute DISTRIBUTE statements, and query
// distributions with IDT and DCASE.
package main

import (
	"fmt"
	"log"

	vienna "repro"
)

func main() {
	const NP = 4
	m := vienna.NewMachine(NP)
	defer m.Close()
	e := vienna.NewEngine(m)

	err := m.Run(func(ctx *vienna.Ctx) error {
		// PROCESSORS R(1:2, 1:2)
		r := m.ProcsDim("R", 2, 2)

		// REAL C(8,8) DIST(BLOCK, BLOCK) TO R          — static
		c := e.MustDeclare(ctx, vienna.Decl{
			Name: "C", Domain: vienna.Dim(8, 8),
			Static: &vienna.DistSpec{
				Type:   vienna.NewType(vienna.Block(), vienna.Block()),
				Target: r.Whole(),
			},
		})

		// REAL B(8,8) DYNAMIC, RANGE((BLOCK,BLOCK),(*,CYCLIC)),
		//      DIST(BLOCK, CYCLIC) TO R                — dynamic primary
		b := e.MustDeclare(ctx, vienna.Decl{
			Name: "B", Domain: vienna.Dim(8, 8), Dynamic: true,
			Range: vienna.Range{
				vienna.NewPattern(vienna.PBlock(), vienna.PBlock()),
				vienna.NewPattern(vienna.PAny(), vienna.PCyclic(1)),
			},
			Init: &vienna.DistSpec{
				Type:   vienna.NewType(vienna.Block(), vienna.Cyclic(1)),
				Target: r.Whole(),
			},
		})

		// REAL A(8,8) DYNAMIC, CONNECT (=B)            — secondary
		a := e.MustDeclare(ctx, vienna.Decl{
			Name: "A", Domain: vienna.Dim(8, 8), Dynamic: true, ConnectTo: "B",
		})

		// Fill B with a rank-visible pattern and look at ownership.
		b.FillFunc(ctx, func(p vienna.Point) float64 { return float64(p[0]*10 + p[1]) })
		ctx.Barrier()
		if ctx.Rank() == 0 {
			fmt.Println("declared:", c, "\n         ", b, "\n         ", a)
			fmt.Printf("owner of B(5,5): processor %d\n", b.Dist().Owner(vienna.Point{5, 5}))
			fmt.Printf("B's type: %v   A follows: %v\n", b.DistType(), a.DistType())
		}
		ctx.Barrier()

		// DISTRIBUTE B :: (BLOCK, BLOCK) — A moves with its primary.
		e.MustDistribute(ctx, []*vienna.Array{b},
			vienna.DimsOf(vienna.Block(), vienna.Block()).To(r.Whole()))
		if ctx.Rank() == 0 {
			fmt.Printf("after DISTRIBUTE: B %v, A %v (epoch %d)\n", b.DistType(), a.DistType(), b.Epoch())
			fmt.Printf("B(5,5) still reads %v\n", b.Get(ctx, 5, 5))
		}
		ctx.Barrier()

		// IDT and DCASE
		if ctx.Rank() == 0 {
			fmt.Printf("IDT(B, (BLOCK,*)) = %v\n", vienna.IDT(b, vienna.NewPattern(vienna.PBlock(), vienna.PAny())))
			picked := ""
			_, err := vienna.Select(b, a).
				Case(func() error { picked = "both block-block"; return nil },
					vienna.P(vienna.NewPattern(vienna.PBlock(), vienna.PBlock())),
					vienna.P(vienna.NewPattern(vienna.PBlock(), vienna.PBlock()))).
				Default(func() error { picked = "something else"; return nil }).
				Run()
			if err != nil {
				return err
			}
			fmt.Println("DCASE picked:", picked)
		}
		ctx.Barrier()

		// A range violation is rejected and leaves the class untouched.
		if err := e.Distribute(ctx, []*vienna.Array{b},
			vienna.DimsOf(vienna.Cyclic(3), vienna.Cyclic(3)).To(r.Whole())); err != nil {
			if ctx.Rank() == 0 {
				fmt.Println("rejected as declared:", err)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sn := m.Stats().Snapshot()
	fmt.Printf("traffic: %d data messages, %d bytes\n", sn.TotalDataMsgs(), sn.TotalBytes())
}
