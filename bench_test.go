package vienna

// Benchmarks regenerating the paper's evaluation artifacts (see DESIGN.md
// per-experiment index and EXPERIMENTS.md for measured results):
//
//	E1 BenchmarkFig1ADI        — Figure 1 / claim C2 (ADI strategies)
//	E2 BenchmarkFig2PIC        — Figure 2 / claim C3 (PIC load balance)
//	E3 BenchmarkSmoothing      — §4 claim C1 (column vs 2-D block)
//	E4 BenchmarkRedistribute   — §4 claim C4 (DISTRIBUTE cost)
//	   Benchmark<micro>        — substrate microbenchmarks
//
// Custom metrics: data messages per run (msgs/run), payload bytes per run
// (bytes/run), and modeled time under the default Hockney parameters
// (model-ms/run) where a cost model is attached.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/pario"
	"repro/internal/parti"
)

const (
	benchAlpha = 1e-4 // 100µs startup — iPSC-class latency
	benchBeta  = 1e-8 // 10ns/byte — ~100 MB/s
)

func BenchmarkFig1ADI(b *testing.B) {
	for _, cfg := range []struct {
		name string
		mode apps.ADIMode
	}{
		{"dynamic", apps.ADIDynamic},
		{"staticCols", apps.ADIStaticCols},
		{"staticRows", apps.ADIStaticRows},
	} {
		for _, size := range []int{64, 128} {
			for _, p := range []int{4, 8} {
				b.Run(fmt.Sprintf("%s/N%d/P%d", cfg.name, size, p), func(b *testing.B) {
					var last apps.ADIResult
					for i := 0; i < b.N; i++ {
						res, err := apps.RunADI(apps.ADIConfig{
							NX: size, NY: size, Iters: 2, P: p, Mode: cfg.mode,
							Alpha: benchAlpha, Beta: benchBeta,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					b.ReportMetric(float64(last.Msgs), "msgs/run")
					b.ReportMetric(float64(last.Bytes), "bytes/run")
					b.ReportMetric(last.ModelTime*1e3, "model-ms/run")
				})
			}
		}
	}
}

func BenchmarkFig2PIC(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		rebalance bool
	}{
		{"staticBlock", false},
		{"bblockRebalanced", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var last apps.PICResult
			for i := 0; i < b.N; i++ {
				res, err := apps.RunPIC(apps.PICConfig{
					NCell: 256, Steps: 40, P: 4, Rebalance: cfg.rebalance,
					DriftFrac: 0.3, Alpha: benchAlpha, Beta: benchBeta,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MeanImbalance, "mean-imbalance")
			b.ReportMetric(last.FinalImbalance, "final-imbalance")
			b.ReportMetric(float64(last.Redistributions), "redists/run")
			b.ReportMetric(last.ModelTime*1e3, "model-ms/run")
		})
	}
}

func BenchmarkSmoothing(b *testing.B) {
	for _, mode := range []apps.SmoothMode{apps.SmoothColumns, apps.SmoothBlock2D} {
		name := "columns"
		if mode == apps.SmoothBlock2D {
			name = "block2d"
		}
		for _, n := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/N%d/P9", name, n), func(b *testing.B) {
				var last apps.SmoothResult
				for i := 0; i < b.N; i++ {
					res, err := apps.RunSmoothing(apps.SmoothConfig{
						N: n, Steps: 4, P: 9, Mode: mode,
						Alpha: benchAlpha, Beta: benchBeta,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MsgsPerProcStep, "msgs/proc/step")
				b.ReportMetric(last.BytesPerProcStep, "bytes/proc/step")
				b.ReportMetric(last.ModelTime*1e3, "model-ms/run")
			})
		}
	}
}

// BenchmarkSmoothingOverlap pairs the synchronous smoothing loop with the
// overlapped one (interior computed while the one-sided halo puts are in
// flight, no per-step barriers) on the same shapes, so the two ns/op
// figures are directly comparable.  Before timing, each variant runs once
// against the serial reference and reports maxerr — overlap must be
// bit-identical, not just close.
func BenchmarkSmoothingOverlap(b *testing.B) {
	for _, mode := range []apps.SmoothMode{apps.SmoothColumns, apps.SmoothBlock2D} {
		name := "columns"
		if mode == apps.SmoothBlock2D {
			name = "block2d"
		}
		for _, overlap := range []bool{false, true} {
			variant := "sync"
			if overlap {
				variant = "overlap"
			}
			b.Run(fmt.Sprintf("%s/%s/N256/P9", name, variant), func(b *testing.B) {
				cfg := apps.SmoothConfig{N: 256, Steps: 8, P: 9, Mode: mode, Overlap: overlap}
				vcfg := cfg
				vcfg.Validate = true
				chk, err := apps.RunSmoothing(vcfg)
				if err != nil {
					b.Fatal(err)
				}
				if chk.MaxErr != 0 {
					b.Fatalf("MaxErr = %g vs serial, want exactly 0", chk.MaxErr)
				}
				var last apps.SmoothResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := apps.RunSmoothing(cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MsgsPerProcStep, "msgs/proc/step")
				b.ReportMetric(last.BytesPerProcStep, "bytes/proc/step")
				b.ReportMetric(chk.MaxErr, "maxerr")
			})
		}
	}
}

func BenchmarkRedistribute(b *testing.B) {
	pairs := []struct {
		name     string
		from, to []dist.DimSpec
		twoD     bool
	}{
		{"blockToCyclic", []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(1)}, false},
		{"blockToCyclic4", []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(4)}, false},
		{"colsToRows", []dist.DimSpec{dist.ElidedDim(), dist.BlockDim()}, []dist.DimSpec{dist.BlockDim(), dist.ElidedDim()}, true},
		{"bblockShift", []dist.DimSpec{dist.BBlockDim(100, 200, 300, 1024)}, []dist.DimSpec{dist.BBlockDim(300, 500, 700, 1024)}, false},
	}
	for _, pr := range pairs {
		for _, n := range []int{1024, 4096} {
			from, to := pr.from, pr.to
			n1 := 0
			n0 := n
			if pr.twoD {
				n0 = 64
				n1 = n / 64
			}
			if pr.name == "bblockShift" && n != 1024 {
				continue // bounds are size-specific
			}
			b.Run(fmt.Sprintf("%s/N%d/P4", pr.name, n), func(b *testing.B) {
				var last apps.RedistCostResult
				for i := 0; i < b.N; i++ {
					res, err := apps.RunRedistCost(apps.RedistCostConfig{
						N0: n0, N1: n1, P: 4, Rounds: 2, From: from, To: to,
						Alpha: benchAlpha, Beta: benchBeta,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.BytesPerRound, "bytes/redist")
				b.ReportMetric(last.MsgsPerRound, "msgs/redist")
			})
		}
	}
}

// BenchmarkRedistributeBudget times the same block->cyclic crossing as
// BenchmarkRedistribute with the planner capped at an eighth of the
// array: throughput should hold (pairwise/chunked move the same bytes)
// while the reported peak wire residency drops below the budget.
func BenchmarkRedistributeBudget(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		bytesTotal := int64(n * 8)
		for _, budget := range []int64{0, bytesTotal / 8} {
			name := fmt.Sprintf("blockToCyclic/N%d/P4/unbounded", n)
			if budget > 0 {
				name = fmt.Sprintf("blockToCyclic/N%d/P4/budget%dK", n, budget>>10)
			}
			b.Run(name, func(b *testing.B) {
				var last apps.RedistCostResult
				for i := 0; i < b.N; i++ {
					res, err := apps.RunRedistCost(apps.RedistCostConfig{
						N0: n, P: 4, Rounds: 2,
						From:  []dist.DimSpec{dist.BlockDim()},
						To:    []dist.DimSpec{dist.CyclicDim(1)},
						Alpha: benchAlpha, Beta: benchBeta,
						MemBudget: budget,
					})
					if err != nil {
						b.Fatal(err)
					}
					if budget > 0 && res.PeakWireBytes > budget {
						b.Fatalf("peak wire %d exceeds budget %d", res.PeakWireBytes, budget)
					}
					last = res
				}
				b.ReportMetric(last.BytesPerRound, "bytes/redist")
				b.ReportMetric(float64(last.PeakWireBytes), "peakwire")
			})
		}
	}
}

// BenchmarkExpandADI times elastic scale-OUT end to end: a 3-rank
// dynamic ADI with one reserved joiner admits it at iteration boundary
// 2, replays the checkpoint onto the grown 4-rank view, and finishes
// bit-exact ("elastic"), next to the same problem run on 4 ranks from
// the start ("static4") — the price of growing mid-run versus having
// the capacity up front.
func BenchmarkExpandADI(b *testing.B) {
	base := apps.ADIConfig{
		NX: 32, NY: 32, Iters: 6, Mode: apps.ADIDynamic, Validate: true,
		Alpha: benchAlpha, Beta: benchBeta,
	}
	b.Run("elastic/N32/P3+1", func(b *testing.B) {
		var last apps.ADIResult
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.P = 3
			cfg.CkptDir, cfg.CkptEvery = b.TempDir(), 1
			cfg.CommTimeout, cfg.CommRetries = 150*time.Millisecond, 2
			cfg.Liveness = &machine.LivenessConfig{}
			cfg.Join, cfg.Elastic, cfg.JoinAfterIter = 1, true, 2
			res, err := apps.RunADI(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.FinalEpoch < 1 {
				b.Fatal("joiner never admitted")
			}
			if res.MaxErr != 0 {
				b.Fatalf("MaxErr = %g after expansion, want exactly 0", res.MaxErr)
			}
			last = res
		}
		b.ReportMetric(float64(last.Msgs), "msgs/run")
		b.ReportMetric(float64(last.Bytes), "bytes/run")
		b.ReportMetric(float64(last.PeakWireBytes), "peakwire")
	})
	b.Run("static4/N32/P4", func(b *testing.B) {
		var last apps.ADIResult
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.P = 4
			res, err := apps.RunADI(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.MaxErr != 0 {
				b.Fatalf("MaxErr = %g, want exactly 0", res.MaxErr)
			}
			last = res
		}
		b.ReportMetric(float64(last.Msgs), "msgs/run")
		b.ReportMetric(float64(last.Bytes), "bytes/run")
		b.ReportMetric(float64(last.PeakWireBytes), "peakwire")
	})
}

// BenchmarkStraggler times the straggler defense end to end on the
// dynamic ADI with rank 2's compute stretched 8×: mitigation off (the
// straggler's critical path sets the pace), throughput-weighted B_BLOCK
// rebalancing (the slow rank keeps proportionally less of each
// dimension), and voluntary drain (checkpoint, scale-in by the
// straggler, survivors replay onto the shrunken membership).  Every run
// asserts the scorer classified the injected rank Degraded and the
// result matches the serial reference bit for bit, so the three ns/op
// figures compare do-nothing against both mitigations.
func BenchmarkStraggler(b *testing.B) {
	for _, policy := range []string{"off", "rebalance", "drain"} {
		b.Run(policy+"/N64/P4", func(b *testing.B) {
			var last apps.ADIResult
			for i := 0; i < b.N; i++ {
				cfg := apps.ADIConfig{
					NX: 64, NY: 64, Iters: 30, P: 4, Mode: apps.ADIDynamic, Validate: true,
					CommTimeout: 250 * time.Millisecond, CommRetries: 2,
					Liveness: &machine.LivenessConfig{Interval: 5 * time.Millisecond},
					Straggler: apps.StragglerConfig{
						HealthWindow: 4, DegradedRatio: 2, Hysteresis: 2,
						Policy: policy, CheckAfter: 3, SlowRank: 2, SlowFactor: 8,
					},
				}
				if policy == "drain" {
					cfg.CkptDir, cfg.CkptEvery = b.TempDir(), 4
				}
				res, err := apps.RunADI(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.DegradedRank != 2 {
					b.Fatalf("DegradedRank = %d, want the injected straggler 2", res.DegradedRank)
				}
				if policy == "drain" && res.FinalEpoch < 1 {
					b.Fatal("the straggler was never drained")
				}
				if res.MaxErr != 0 {
					b.Fatalf("MaxErr = %g under policy %s, want exactly 0", res.MaxErr, policy)
				}
				last = res
			}
			b.ReportMetric(float64(last.DegradedRank), "degraded-rank")
			b.ReportMetric(float64(len(last.Drained)), "drained/run")
			b.ReportMetric(float64(last.Msgs), "msgs/run")
		})
	}
}

// BenchmarkCkptIO times the crash-safe checkpoint paths.  The save
// variants compare the per-rank flat layout (one stripe per rank over
// the distributed dimension — the exchange degenerates to self-copies,
// the v1-era file shape) against the striped two-phase collective write
// (4 ranks funnel into 2 I/O servers), without and with the parity
// stripe.  The restore variants read a committed parity epoch back —
// clean, and with one stripe file deleted before every iteration so each
// restore must reconstruct it from parity and heal it on disk.
func BenchmarkCkptIO(b *testing.B) {
	const np = 4
	dom := index.Dim(256, 256) // 512 KiB of float64s, divisible by both stripe counts
	bytesTotal := int64(dom.Size() * 8)
	fill := func(p index.Point) float64 { return float64(1000*p[0] + p[1]) }

	declare := func(ctx *machine.Ctx) *darray.Array {
		tg := ctx.Machine().ProcsDim("$io", np).Whole()
		d := dist.MustNew(dist.NewType(dist.ElidedDim(), dist.BlockDim()), dom, tg)
		a := darray.New(ctx, "A", dom, d)
		a.FillFunc(ctx, fill)
		return a
	}

	save := func(b *testing.B, opts ckpt.Options) {
		dir := b.TempDir()
		m := machine.New(np)
		defer m.Close()
		b.SetBytes(bytesTotal)
		if err := m.Run(func(ctx *machine.Ctx) error {
			a := declare(ctx)
			if err := ctx.Barrier(); err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				if _, err := ckpt.SaveOpts(ctx, dir, []*darray.Array{a}, nil, opts); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("save/perRankFlat/P4", func(b *testing.B) {
		save(b, ckpt.Options{Servers: np, Redundancy: pario.RedundancyNone, Keep: 2})
	})
	b.Run("save/striped2/P4", func(b *testing.B) {
		save(b, ckpt.Options{Servers: 2, Redundancy: pario.RedundancyNone, Keep: 2})
	})
	b.Run("save/striped2parity/P4", func(b *testing.B) {
		save(b, ckpt.Options{Servers: 2, Redundancy: pario.RedundancyParity, Keep: 2})
	})

	restore := func(b *testing.B, damage bool) {
		dir := b.TempDir()
		met := &pario.Metrics{}
		opts := ckpt.Options{Servers: 2, Redundancy: pario.RedundancyParity, IO: pario.Config{Metrics: met}}
		m := machine.New(np)
		defer m.Close()
		b.SetBytes(bytesTotal)
		var lost string
		if err := m.Run(func(ctx *machine.Ctx) error {
			a := declare(ctx)
			if err := ctx.Barrier(); err != nil {
				return err
			}
			if _, err := ckpt.SaveOpts(ctx, dir, []*darray.Array{a}, nil, opts); err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				epoch, man, err := ckpt.LatestEpoch(dir)
				if err != nil {
					return err
				}
				lost = filepath.Join(ckpt.EpochDir(dir, epoch), man.Stripes[1].Name)
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				if damage && ctx.Rank() == 0 {
					if err := os.Remove(lost); err != nil {
						return err
					}
				}
				if err := ctx.Barrier(); err != nil {
					return err
				}
				r := darray.NewUndistributed(ctx, "A", dom)
				if _, err := ckpt.RestoreOpts(ctx, dir, []*darray.Array{r}, opts); err != nil {
					return err
				}
				// The reconstruction also heals the stripe on disk, so the
				// next iteration's damage starts from a whole epoch again.
				if err := ctx.Barrier(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if damage && met.Reconstructions.Load() < int64(b.N) {
			b.Fatalf("reconstructions = %d over %d damaged restores", met.Reconstructions.Load(), b.N)
		}
		b.ReportMetric(float64(met.Repairs.Load())/float64(b.N), "repairs/run")
	}
	b.Run("restore/clean/P4", func(b *testing.B) { restore(b, false) })
	b.Run("restore/repairLostStripe/P4", func(b *testing.B) { restore(b, true) })
}

func BenchmarkPointToPoint(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("chan/%dB", size), func(b *testing.B) {
			tr := msg.NewChanTransport(2)
			defer tr.Close()
			payload := make([]byte, size)
			done := make(chan struct{})
			go func() {
				ep := tr.Endpoint(1)
				for i := 0; i < b.N; i++ {
					if _, err := ep.Recv(0, 1); err != nil {
						return
					}
				}
				close(done)
			}()
			ep := tr.Endpoint(0)
			b.ResetTimer()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := ep.Send(1, 1, payload); err != nil {
					b.Fatal(err)
				}
			}
			<-done
		})
	}
	b.Run("tcp/4096B", func(b *testing.B) {
		tr, err := msg.NewTCPTransport(2)
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		payload := make([]byte, 4096)
		done := make(chan struct{})
		go func() {
			ep := tr.Endpoint(1)
			for i := 0; i < b.N; i++ {
				if _, err := ep.Recv(0, 1); err != nil {
					return
				}
			}
			close(done)
		}()
		ep := tr.Endpoint(0)
		b.ResetTimer()
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := ep.Send(1, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	})
}

func BenchmarkBarrier(b *testing.B) {
	for _, np := range []int{2, 8} {
		b.Run(fmt.Sprintf("P%d", np), func(b *testing.B) {
			m := machine.New(np)
			defer m.Close()
			b.ResetTimer()
			if err := m.Run(func(ctx *machine.Ctx) error {
				for i := 0; i < b.N; i++ {
					ctx.Barrier()
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkScheduleBuild(b *testing.B) {
	m := machine.New(8)
	defer m.Close()
	tg := m.ProcsDim("P", 8).Whole()
	dom := index.Dim(1 << 20)
	oldD := dist.MustNew(dist.NewType(dist.BlockDim()), dom, tg)
	newD := dist.MustNew(dist.NewType(dist.CyclicDim(4)), dom, tg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := oldD.LocalGrid(3).Intersect(newD.LocalGrid(5))
		if g.Count() == 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkGhostExchange(b *testing.B) {
	m := machine.New(4)
	defer m.Close()
	e := NewEngine(m)
	if err := m.Run(func(ctx *Ctx) error {
		u := e.MustDeclare(ctx, Decl{Name: "U", Domain: Dim(512, 512), Dynamic: true,
			Init:  &DistSpec{Type: NewType(Elided(), Block())},
			Ghost: []int{1, 1}})
		u.Fill(ctx, 1)
		ctx.Barrier()
		if ctx.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := u.ExchangeAllGhosts(ctx); err != nil {
				return err
			}
			ctx.Barrier()
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTTableGather(b *testing.B) {
	m := machine.New(4)
	defer m.Close()
	const n = 4096
	if err := m.Run(func(ctx *machine.Ctx) error {
		rank := ctx.Rank()
		mine := make([]int, 0, n/4)
		for i := rank + 1; i <= n; i += 4 {
			mine = append(mine, i)
		}
		tt := parti.NewTTable(ctx, n, mine)
		local := make([]float64, len(mine))
		for k := range local {
			local[k] = float64(mine[k])
		}
		want := make([]int, 256)
		for k := range want {
			want[k] = (rank*97+k*31)%n + 1
		}
		sched := parti.BuildGather(ctx, tt, want)
		ctx.Barrier()
		if ctx.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			vals := sched.Gather(ctx, local)
			if vals[0] != float64(want[0]) {
				return fmt.Errorf("bad gather")
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}
