// Command vfbench regenerates the paper's evaluation artifacts as tables
// (see DESIGN.md per-experiment index; results are recorded in
// EXPERIMENTS.md):
//
//	vfbench -exp adi        Figure 1 / claim C2
//	vfbench -exp pic        Figure 2 / claim C3
//	vfbench -exp smoothing  §4 claim C1 (N/p crossover)
//	vfbench -exp redist     §4 claim C4 (DISTRIBUTE cost, amortization)
//	vfbench -exp expand     elastic scale-out (rank join + grow policy)
//	vfbench -exp degraded   striped checkpoint I/O, redundancy, self-healing restore
//	vfbench -exp straggler  straggler defense (health scoring, weighted rebalance, voluntary drain)
//	vfbench -exp all        everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/health"
	"repro/internal/machine"
	"repro/internal/pario"
	"repro/internal/redist"
	"repro/internal/scale"
	"repro/internal/trace"
)

var (
	alpha       = flag.Float64("alpha", 1e-4, "modeled message startup (s)")
	beta        = flag.Float64("beta", 1e-8, "modeled per-byte cost (s)")
	quick       = flag.Bool("quick", false, "smaller sizes (for smoke runs)")
	traceFile   = flag.String("trace", "", "trace the first dynamic ADI run to FILE (Chrome trace_event JSON) and print its per-phase summary")
	faultSpec   = flag.String("fault", "", "inject transport faults into the ADI runs, e.g. 'senderr,rank=1,after=3,count=2' (see msg.ParseFaultPlan)")
	commTimeout = flag.Duration("comm-timeout", 0, "per-receive collective deadline for the ADI runs (0 = wait forever; matches vfrun)")
	commRetries = flag.Int("comm-retries", 0, "bounded retries for failed or timed-out collective operations in the ADI runs (matches vfrun)")
	ckptDir     = flag.String("ckpt-dir", "", "write coordinated checkpoints of the ADI runs into this directory (see internal/ckpt)")
	ckptEvery   = flag.Int("ckpt-every", 1, "checkpoint period in iterations (with -ckpt-dir)")
	recoverRun  = flag.Bool("recover", false, "resume the ADI runs from the latest committed checkpoint in -ckpt-dir")
	onlineRec   = flag.Bool("online-recover", false, "recover from a mid-run rank loss in-process: survivors regroup onto the next membership epoch and replay the last committed checkpoint (ADI runs; requires -ckpt-dir)")
	deadline    = flag.Duration("deadline", 0, "kill the whole process with a goroutine dump if it runs longer than this (hang watchdog; 0 = off)")
	redistBgt   = flag.String("redist-budget", "", "bound each redistribution's peak resident wire bytes per rank in -exp redist, e.g. 64K, 2M (empty/0 = unbounded)")
	elastic     = flag.Int("elastic", 0, "reserve N joiner ranks in the ADI runs and admit them at the first elastic iteration boundary (requires -ckpt-dir; see -exp expand for the full demo)")
	joinAfter   = flag.Int("join-after", 2, "first iteration boundary at which elastic runs poll for pending joiners (with -elastic / -exp expand)")
	ioServers   = flag.Int("io-servers", 0, "number of I/O server ranks (stripe files) per checkpoint epoch (0 = min(P,4))")
	ioRedund    = flag.String("io-redundancy", "", "checkpoint redundancy mode: parity (default), replica, or none")
	ckptKeep    = flag.Int("ckpt-keep", 0, "keep only the newest N committed checkpoint epochs (0 = keep all)")
	ioFault     = flag.String("io-fault", "", "inject disk faults under the checkpoint paths, e.g. 'eio,op=write,count=2;bitrot,path=stripe-0001' (kinds: eio|short|torn|bitrot|stall; see pario.ParseFaultPlan)")
	healthWin   = flag.Int("health-window", 4, "health scorer observation window for -exp straggler (heartbeat-fed EWMA throughput; matches vfrun)")
	slowRank    = flag.Int("slow-rank", 2, "physical rank whose compute sections -exp straggler stretches")
	slowFactor  = flag.Float64("slow-factor", 8, "compute slowdown injected on -slow-rank in -exp straggler (<=1 = no injection)")
	drainOnly   = flag.Bool("drain", false, "run only the drain policy in -exp straggler (skip the off/rebalance comparison; matches vfrun)")

	// Deprecated aliases, kept so existing invocations stay valid.
	faultTimeout = flag.Duration("fault-timeout", 0, "deprecated alias for -comm-timeout")
	faultRetries = flag.Int("fault-retries", 0, "deprecated alias for -comm-retries")
)

// armDeadline starts the hang watchdog: if the process is still alive
// after d, every goroutine's stack is dumped to stderr and the process
// exits nonzero — a wedged collective becomes a diagnosable artifact
// instead of a silent CI timeout.
func armDeadline(d time.Duration) {
	if d <= 0 {
		return
	}
	time.AfterFunc(d, func() {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "vfbench: -deadline %v exceeded; goroutine dump:\n%s\n", d, buf[:n])
		os.Exit(2)
	})
}

func main() {
	exp := flag.String("exp", "all", "experiment: adi|pic|smoothing|redist|recover|online-recover|expand|degraded|straggler|all")
	flag.Parse()
	armDeadline(*deadline)
	if *commTimeout == 0 {
		*commTimeout = *faultTimeout
	}
	if *commRetries == 0 {
		*commRetries = *faultRetries
	}
	switch *exp {
	case "adi":
		runADI()
	case "pic":
		runPIC()
	case "smoothing":
		runSmoothing()
	case "redist":
		runRedist()
	case "recover":
		runRecover()
	case "online-recover":
		runOnlineRecover()
	case "expand":
		runExpand()
	case "degraded":
		runDegraded()
	case "straggler":
		runStraggler()
	case "all":
		runSmoothing()
		runADI()
		runPIC()
		runRedist()
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// ioCfg assembles the checkpoint parallel-I/O options the flags ask
// for.  Each call builds a fresh FaultFS, so a seeded -io-fault
// schedule restarts deterministically per run, and a fresh metrics
// sink, so per-run I/O counts don't bleed across experiments.
func ioCfg() apps.IOConfig {
	cfg := apps.IOConfig{
		Servers: *ioServers, Redundancy: *ioRedund, Keep: *ckptKeep,
		IO: pario.Config{Metrics: &pario.Metrics{}},
	}
	if *ioFault != "" {
		plan, err := pario.ParseFaultPlan(*ioFault)
		if err != nil {
			log.Fatal(err)
		}
		cfg.FS = pario.NewFaultFS(pario.OS{}, plan).Rank
		cfg.IO.Timeout = time.Second
		cfg.IO.Retries = 2
		cfg.IO.Backoff = time.Millisecond
	}
	return cfg
}

func runADI() {
	fmt.Printf("\n== E1: ADI (paper Figure 1, claim C2) — alpha=%.0e beta=%.0e ==\n", *alpha, *beta)
	fmt.Println("Dynamic confines all communication to DISTRIBUTE; the static distribution")
	fmt.Println("pays pipelined solver communication inside one sweep every iteration.")
	if *elastic > 0 {
		if *ckptDir == "" {
			log.Fatal("-elastic requires -ckpt-dir")
		}
		fmt.Printf("elastic: %d reserved joiner(s) admitted from iteration boundary %d\n", *elastic, *joinAfter)
	}
	w := tab()
	fmt.Fprintln(w, "N\tP\tstrategy\tdata msgs\tbytes\tsweep msgs\tredist msgs\tmodel(ms)\twall(ms)\tmax|err|")
	sizes := []int{128, 256}
	procs := []int{4, 8}
	if *quick {
		sizes, procs = []int{64}, []int{4}
	}
	var tr *trace.Tracer
	for _, n := range sizes {
		for _, p := range procs {
			for _, mode := range []apps.ADIMode{apps.ADIDynamic, apps.ADIStaticCols} {
				cfg := apps.ADIConfig{
					NX: n, NY: n, Iters: 4, P: p, Mode: mode,
					Alpha: *alpha, Beta: *beta, Validate: true,
					Fault: *faultSpec, CommTimeout: *commTimeout, CommRetries: *commRetries,
					CkptDir: *ckptDir, CkptEvery: *ckptEvery, Recover: *recoverRun,
					IO:            ioCfg(),
					OnlineRecover: *onlineRec,
				}
				if (*onlineRec || *elastic > 0) && cfg.Liveness == nil {
					cfg.Liveness = &machine.LivenessConfig{}
				}
				if *elastic > 0 {
					cfg.Join, cfg.Elastic, cfg.JoinAfterIter = *elastic, true, *joinAfter
					if cfg.CommTimeout == 0 {
						cfg.CommTimeout = 150 * time.Millisecond
					}
					if cfg.CommRetries == 0 {
						cfg.CommRetries = 2
					}
				}
				if *traceFile != "" && mode == apps.ADIDynamic && tr == nil {
					tr = trace.New(p + *elastic)
					cfg.Tracer = tr
				}
				res, err := apps.RunADI(cfg)
				if err != nil {
					log.Fatal(err)
				}
				if cfg.Elastic && res.FinalEpoch < 1 {
					log.Fatalf("elastic ADI run finished on epoch %d: the joiner was never admitted", res.FinalEpoch)
				}
				fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%.1f\t%.1e\n",
					n, p, mode, res.Msgs, res.Bytes, res.SweepMsgs, res.RedistMsgs,
					res.ModelTime*1e3, float64(res.Wall.Microseconds())/1e3, res.MaxErr)
			}
		}
	}
	w.Flush()
	if tr != nil {
		if err := tr.WriteJSONFile(*traceFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ndynamic ADI trace written to %s\n", *traceFile)
		fmt.Print(tr.Summarize().String())
	}
}

func runPIC() {
	fmt.Printf("\n== E2: PIC (paper Figure 2, claim C3) ==\n")
	fmt.Println("Particles drift rightward; B_BLOCK(BOUNDS) rebalancing every 10 steps keeps")
	fmt.Println("max/avg particles per processor near 1 where static BLOCK degrades.")
	steps := 100
	if *quick {
		steps = 40
	}
	w := tab()
	fmt.Fprintln(w, "NCELL\tP\tstrategy\tmean imb\tpeak imb\tfinal imb\tredists\tredist bytes\tmodel(ms)\twall(ms)")
	for _, reb := range []bool{false, true} {
		res, err := apps.RunPIC(apps.PICConfig{
			NCell: 256, Steps: steps, P: 4, Rebalance: reb, DriftFrac: 0.35,
			Alpha: *alpha, Beta: *beta,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "static BLOCK"
		if reb {
			name = "B_BLOCK rebalanced"
		}
		fmt.Fprintf(w, "256\t4\t%s\t%.3f\t%.3f\t%.3f\t%d\t%d\t%.2f\t%.1f\n",
			name, res.MeanImbalance, res.PeakImbalance, res.FinalImbalance,
			res.Redistributions, res.RedistBytes, res.ModelTime*1e3,
			float64(res.Wall.Microseconds())/1e3)
		if res.ParticlesStart != res.ParticlesEnd {
			log.Fatalf("particle conservation violated: %v -> %v", res.ParticlesStart, res.ParticlesEnd)
		}
	}
	w.Flush()
	// imbalance trajectory table
	resS, _ := apps.RunPIC(apps.PICConfig{NCell: 256, Steps: steps, P: 4, DriftFrac: 0.35})
	resR, _ := apps.RunPIC(apps.PICConfig{NCell: 256, Steps: steps, P: 4, DriftFrac: 0.35, Rebalance: true})
	fmt.Println("\nload-imbalance trajectory (max/avg particles per processor):")
	w = tab()
	fmt.Fprintln(w, "step\tstatic BLOCK\tB_BLOCK rebalanced")
	for k := 9; k < steps; k += 10 {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", k+1, resS.ImbalanceSeries[k], resR.ImbalanceSeries[k])
	}
	w.Flush()
}

func runSmoothing() {
	fmt.Printf("\n== E3: smoothing (claim C1) — alpha=%.0e beta=%.0e ==\n", *alpha, *beta)
	fmt.Println("Columns: 2 messages of 8N bytes/proc/step.  2-D blocks on qxq: 4 messages")
	fmt.Println("of 8N/q bytes.  The ratio N/p (vs alpha/beta) determines the winner.")
	w := tab()
	fmt.Fprintln(w, "N\tP\tdist\tmsgs/proc/step\tbytes/proc/step\tmodeled comm/step\tchosen")
	sizes := []int{64, 256, 1024, 4096}
	if *quick {
		sizes = []int{64, 256}
	}
	for _, n := range sizes {
		cc, cb := apps.SmoothModelCost(n, 9, *alpha, *beta)
		choice := apps.ChooseSmoothingDist(n, 9, *alpha, *beta)
		for _, mode := range []apps.SmoothMode{apps.SmoothColumns, apps.SmoothBlock2D} {
			var res apps.SmoothResult
			var err error
			if n <= 1024 {
				res, err = apps.RunSmoothing(apps.SmoothConfig{N: n, Steps: 3, P: 9, Mode: mode})
				if err != nil {
					log.Fatal(err)
				}
			} else {
				// analytic only at the largest size
				res.Mode = mode
				if mode == apps.SmoothColumns {
					res.MsgsPerProcStep, res.BytesPerProcStep = 2, float64(2*8*n)
				} else {
					res.MsgsPerProcStep, res.BytesPerProcStep = 4, float64(4*8*n/3)
				}
			}
			mc := cc
			if mode == apps.SmoothBlock2D {
				mc = cb
			}
			star := ""
			if mode == choice {
				star = "  <- chosen at runtime"
			}
			fmt.Fprintf(w, "%d\t9\t%v\t%.0f\t%.0f\t%.3e s\t%s\n",
				n, res.Mode, res.MsgsPerProcStep, res.BytesPerProcStep, mc, star)
		}
	}
	w.Flush()
	// crossover point
	prev := apps.ChooseSmoothingDist(4, 9, *alpha, *beta)
	for n := 8; n <= 1<<24; n *= 2 {
		cur := apps.ChooseSmoothingDist(n, 9, *alpha, *beta)
		if cur != prev {
			fmt.Printf("crossover: columns -> 2-D blocks between N=%d and N=%d\n", n/2, n)
			break
		}
		prev = cur
	}
	// The paper: "given the startup overhead and cost per byte of each
	// message of the target machine, the ratio N/p will determine the
	// most appropriate distribution" — sweep machines and P:
	fmt.Println("\ncrossover N (columns -> 2-D blocks) by machine alpha and P (beta fixed):")
	w = tab()
	fmt.Fprintln(w, "alpha\\P\t4\t9\t16\t64")
	for _, a := range []float64{1e-5, 1e-4, 1e-3} {
		row := fmt.Sprintf("%.0e", a)
		for _, p := range []int{4, 9, 16, 64} {
			cross := "-"
			prev := apps.ChooseSmoothingDist(4, p, a, *beta)
			for n := 8; n <= 1<<26; n *= 2 {
				cur := apps.ChooseSmoothingDist(n, p, a, *beta)
				if cur != prev {
					cross = fmt.Sprintf("%d", n)
					break
				}
				prev = cur
			}
			row += "\t" + cross
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
}

// runRecover demonstrates the checkpoint/restart + elastic
// shrink-recovery path end to end: a dynamic ADI run with per-iteration
// checkpoints is killed by a permanently silent rank, the heartbeat
// failure detector reports the survivors, and the run is relaunched on
// that smaller machine from the last committed epoch, converging to the
// fault-free answer.
func runRecover() {
	fmt.Printf("\n== E5: checkpoint/restart + shrink-recovery ==\n")
	n, iters, p := 64, 8, 4
	if *quick {
		n, iters = 32, 6
	}
	dir := *ckptDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "vfckpt-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	fault := *faultSpec
	if fault == "" {
		fault = "drop,rank=2,after=100" // permanent kill once under way
	}
	to, retries := *commTimeout, *commRetries
	if to == 0 {
		to = 150 * time.Millisecond
	}
	if retries == 0 {
		retries = 2
	}

	fmt.Printf("phase 1: ADI %dx%d, %d iters on %d ranks, ckpt every iter, fault %q\n", n, n, iters, p, fault)
	killed := apps.ADIConfig{
		NX: n, NY: n, Iters: iters, P: p, Mode: apps.ADIDynamic,
		CkptDir: dir, CkptEvery: *ckptEvery, IO: ioCfg(),
		Fault: fault, CommTimeout: to, CommRetries: retries,
		Liveness: &machine.LivenessConfig{},
	}
	res, err := apps.RunADI(killed)
	if err == nil {
		fmt.Println("the injected fault never fired; nothing to recover from")
		return
	}
	fmt.Printf("  run failed as injected: %v\n", err)
	fmt.Printf("  failure detector survivors: %v\n", res.Survivors)
	epoch, man, err := ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		log.Fatalf("no committed checkpoint to recover from (epoch %d, %v)", epoch, err)
	}
	it, _ := man.MetaInt("iter")
	fmt.Printf("  last committed epoch %d (after iteration %d)\n", epoch, it)

	np := len(res.Survivors)
	if np == 0 {
		np = p - 1
	}
	fmt.Printf("phase 2: relaunch on %d survivors with -recover\n", np)
	rec := apps.ADIConfig{
		NX: n, NY: n, Iters: iters, P: np, Mode: apps.ADIDynamic,
		CkptDir: dir, CkptEvery: *ckptEvery, IO: ioCfg(), Recover: true, Validate: true,
	}
	res2, err := apps.RunADI(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resumed after iteration %d, ran to %d; max|err| vs fault-free serial reference = %.1e\n",
		res2.ResumedIter, iters, res2.MaxErr)
	if res2.MaxErr > 1e-12 {
		log.Fatalf("recovered result deviates from the reference (%.3e > 1e-12)", res2.MaxErr)
	}
	fmt.Println("  recovery matches the fault-free result within 1e-12")
}

// runOnlineRecover demonstrates the membership-epoch path end to end: a
// dynamic ADI run with per-iteration checkpoints loses a rank mid-run,
// the survivors regroup onto epoch 1 *in the same process*, replay the
// last committed checkpoint onto the shrunken view, and finish —
// matching the fault-free serial reference bit for bit.
func runOnlineRecover() {
	fmt.Printf("\n== E6: online failure recovery (survivor regroup, membership epochs) ==\n")
	n, iters, p := 64, 8, 4
	if *quick {
		n, iters = 32, 6
	}
	dir := *ckptDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "vfckpt-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	fault := *faultSpec
	if fault == "" {
		fault = "drop,rank=2,after=150" // permanent kill once the first checkpoints committed
	}
	to, retries := *commTimeout, *commRetries
	if to == 0 {
		to = 150 * time.Millisecond
	}
	if retries == 0 {
		retries = 2
	}

	fmt.Printf("ADI %dx%d, %d iters on %d ranks, ckpt every iter, fault %q, online recovery on\n",
		n, n, iters, p, fault)
	cfg := apps.ADIConfig{
		NX: n, NY: n, Iters: iters, P: p, Mode: apps.ADIDynamic, Validate: true,
		CkptDir: dir, CkptEvery: *ckptEvery, IO: ioCfg(),
		Fault: fault, CommTimeout: to, CommRetries: retries,
		Liveness:      &machine.LivenessConfig{},
		OnlineRecover: true,
	}
	res, err := apps.RunADI(cfg)
	if err != nil {
		log.Fatalf("online recovery run: %v", err)
	}
	if res.FinalEpoch == 0 {
		fmt.Println("the injected fault never fired; the run completed on epoch 0")
		return
	}
	fmt.Printf("  rank loss detected; survivors %v regrouped onto membership epoch %d\n",
		res.Survivors, res.FinalEpoch)
	fmt.Printf("  replayed checkpointed iteration %d in-process, ran to %d\n", res.ResumedIter, iters)
	fmt.Printf("  max|err| vs fault-free serial reference = %g\n", res.MaxErr)
	if res.MaxErr != 0 {
		log.Fatalf("survivor result deviates from the serial reference (want bit-for-bit 0)")
	}
	fmt.Println("  survivors' result matches the fault-free reference bit for bit")
}

// runExpand demonstrates elastic scale-OUT end to end on all three
// applications: a reserved rank parks in AwaitJoin, the active members
// agree at an iteration boundary, checkpoint, admit it onto membership
// epoch 1, and replay onto the grown view — finishing bit-exact (ADI),
// within float tolerance (smoothing), and particle-conserving (PIC).
// The measured ADI trace then feeds the cost-driven grow policy
// (internal/scale), printing whether the join would have been
// recommended on cost grounds alone.
func runExpand() {
	budget, err := redist.ParseBudget(*redistBgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== E7: elastic scale-out (rank join, expand-recovery, grow policy) ==\n")
	n, iters, p, join := 32, 8, 3, 1
	if *quick {
		n, iters = 24, 6
	}
	dir := *ckptDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "vfckpt-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	to, retries := *commTimeout, *commRetries
	if to == 0 {
		to = 150 * time.Millisecond
	}
	if retries == 0 {
		retries = 2
	}

	fmt.Printf("ADI %dx%d, %d iters on %d ranks + %d reserved joiner, ckpt every iter, join polled from boundary %d\n",
		n, n, iters, p, join, *joinAfter)
	tr := trace.New(p + join)
	cfg := apps.ADIConfig{
		NX: n, NY: n, Iters: iters, P: p, Mode: apps.ADIDynamic, Validate: true,
		Alpha: *alpha, Beta: *beta, Tracer: tr,
		CkptDir: dir, CkptEvery: *ckptEvery, IO: ioCfg(),
		Fault: *faultSpec, CommTimeout: to, CommRetries: retries,
		Liveness:      &machine.LivenessConfig{},
		OnlineRecover: *faultSpec != "",
		Join:          join,
		Elastic:       true,
		JoinAfterIter: *joinAfter,
		MemBudget:     budget,
	}
	res, err := apps.RunADI(cfg)
	if err != nil {
		log.Fatalf("elastic ADI run: %v", err)
	}
	if res.FinalEpoch < 1 {
		log.Fatalf("run finished on epoch %d: the joiner was never admitted", res.FinalEpoch)
	}
	fmt.Printf("  joiner admitted; members %v now run membership epoch %d on %d ranks\n",
		res.Survivors, res.FinalEpoch, len(res.Survivors))
	fmt.Printf("  replayed checkpointed iteration %d onto the grown view, ran to %d\n", res.ResumedIter, iters)
	fmt.Printf("  max|err| vs fault-free serial reference = %g\n", res.MaxErr)
	if res.MaxErr != 0 {
		log.Fatal("grown-view result deviates from the serial reference (want bit-for-bit 0)")
	}
	fmt.Println("  grown view's result matches the fault-free reference bit for bit")
	if budget > 0 {
		fmt.Printf("  peak resident wire bytes %d (budget %d)\n", res.PeakWireBytes, budget)
		if res.PeakWireBytes > budget {
			log.Fatalf("expand redistribution broke the -redist-budget: %d > %d", res.PeakWireBytes, budget)
		}
	}

	// The grow policy, fed by the run's own measurements: would the
	// cost model have recommended admitting the joiner?
	sum := tr.Summarize()
	if st, ok := sum.Phase("iterate"); ok && st.Count > 0 {
		ps, _ := scale.FromSummary(sum, "iterate", st.Count, p, *alpha, *beta)
		adv := scale.Recommend(scale.Params{
			NP: p, NPNew: p + join,
			StepsLeft: iters - *joinAfter,
			Step:      ps,
			Redist:    scale.RedistCost(sum),
		})
		fmt.Printf("  grow policy (%d ranks -> %d, %d steps left at the boundary): %s\n",
			p, p+join, iters-*joinAfter, adv)
	}

	fmt.Printf("\nsmoothing %dx%d, %d steps on %d+%d ranks (columns)\n", n, n, iters, p, join)
	sres, err := apps.RunSmoothing(apps.SmoothConfig{
		N: n, Steps: iters, P: p, Mode: apps.SmoothColumns, Validate: true,
		CkptDir: dir, CkptEvery: *ckptEvery,
		CommTimeout: to, CommRetries: retries,
		Liveness:      &machine.LivenessConfig{},
		Join:          join,
		Elastic:       true,
		JoinAfterIter: *joinAfter,
	})
	if err != nil {
		log.Fatalf("elastic smoothing run: %v", err)
	}
	if sres.FinalEpoch < 1 {
		log.Fatal("smoothing joiner was never admitted")
	}
	fmt.Printf("  grown to epoch %d; max|err| vs serial reference = %.2e\n", sres.FinalEpoch, sres.MaxErr)
	if sres.MaxErr > 1e-12 {
		log.Fatalf("smoothing deviates after expansion (%.3e > 1e-12)", sres.MaxErr)
	}

	fmt.Printf("\nPIC %d cells, %d steps on %d+%d ranks, B_BLOCK rebalance every 2\n", n, iters, p, join)
	pres, err := apps.RunPIC(apps.PICConfig{
		NCell: n, Steps: iters, P: p, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16,
		CkptDir: dir, CkptEvery: *ckptEvery,
		CommTimeout: to, CommRetries: retries,
		Liveness:      &machine.LivenessConfig{},
		Join:          join,
		Elastic:       true,
		JoinAfterIter: *joinAfter,
	})
	if err != nil {
		log.Fatalf("elastic PIC run: %v", err)
	}
	if pres.FinalEpoch < 1 {
		log.Fatal("PIC joiner was never admitted")
	}
	fmt.Printf("  grown to epoch %d; particles %v -> %v across the membership change\n",
		pres.FinalEpoch, pres.ParticlesStart, pres.ParticlesEnd)
	if pres.ParticlesEnd != pres.ParticlesStart {
		log.Fatal("particle conservation violated across the expansion")
	}
	fmt.Println("\nall three applications grew onto the admitted rank and finished correct")
}

// runDegraded demonstrates the striped parallel-I/O path end to end on
// all three applications: checkpoints are written by I/O server ranks as
// stripe files with redundancy, so losing or corrupting any single file
// of the newest epoch still restores bit-exact — the damaged stripe is
// reconstructed on the fly and healed on disk — and a Scrub pass repairs
// silent bitrot in place before a second failure can stack on top of it.
func runDegraded() {
	fmt.Printf("\n== E8: degraded-mode restore (striped I/O, redundancy, self-healing) ==\n")
	n, iters, p := 64, 6, 4
	if *quick {
		n, iters = 32, 4
	}
	dir := *ckptDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "vfckpt-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	io := ioCfg()
	if io.Redundancy == "" {
		io.Redundancy = pario.RedundancyParity
	}
	if io.IO.Metrics == nil {
		io.IO.Metrics = &pario.Metrics{}
	}
	met := io.IO.Metrics

	base := apps.ADIConfig{
		NX: n, NY: n, Iters: iters, P: p, Mode: apps.ADIDynamic,
		CkptDir: dir, CkptEvery: *ckptEvery, IO: io,
	}
	fmt.Printf("phase 1: ADI %dx%d, %d iters on %d ranks, ckpt every iter, %s redundancy\n",
		n, n, iters, p, io.Redundancy)
	if _, err := apps.RunADI(base); err != nil {
		log.Fatal(err)
	}
	epoch, man, err := ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		log.Fatalf("no committed checkpoint after phase 1 (epoch %d, %v)", epoch, err)
	}
	victim := man.Stripes[len(man.Stripes)/2].Name
	if err := os.Remove(filepath.Join(ckpt.EpochDir(dir, epoch), victim)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  committed epoch %d holds %d stripe files; deleted %s\n", epoch, man.NS, victim)

	fmt.Printf("phase 2: relaunch with -recover against the damaged epoch\n")
	rec := base
	rec.Recover, rec.Validate = true, true
	res, err := apps.RunADI(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resumed after iteration %d, ran to %d; max|err| vs fault-free serial reference = %g\n",
		res.ResumedIter, iters, res.MaxErr)
	fmt.Printf("  stripes reconstructed from redundancy: %d; files healed on disk: %d\n",
		met.Reconstructions.Load(), met.Repairs.Load())
	if res.MaxErr != 0 {
		log.Fatal("degraded restore deviates from the serial reference (want bit-for-bit 0)")
	}
	fmt.Println("  degraded restore matches the fault-free result bit for bit")

	fmt.Printf("phase 3: flip one byte of the newest epoch (silent bitrot), then scrub\n")
	epoch, man, err = ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		log.Fatalf("no committed checkpoint after phase 2 (epoch %d, %v)", epoch, err)
	}
	rot := filepath.Join(ckpt.EpochDir(dir, epoch), man.Stripes[0].Name)
	buf, err := os.ReadFile(rot)
	if err != nil {
		log.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(rot, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	sum, err := ckpt.Scrub(dir, ckpt.Options{
		Servers: io.Servers, Redundancy: io.Redundancy, FS: io.FS, IO: io.IO,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scrub: %d epochs, %d files checked, repaired %v, unrecoverable %v\n",
		sum.Epochs, sum.Checked, sum.Repaired, sum.Unrecoverable)
	if len(sum.Repaired) == 0 || len(sum.Unrecoverable) != 0 {
		log.Fatal("scrub failed to repair the injected bitrot in place")
	}
	if e2, _, err := ckpt.LatestEpoch(dir); err != nil || e2 != epoch {
		log.Fatalf("epoch %d no longer verifies after scrub (got %d, %v)", epoch, e2, err)
	}
	fmt.Println("  bitrot healed in place; the epoch verifies clean again")

	sdir := filepath.Join(dir, "smooth")
	fmt.Printf("phase 4: smoothing %dx%d, %d steps on %d ranks, same damage drill\n", n, n, iters, p)
	sbase := apps.SmoothConfig{
		N: n, Steps: iters, P: p, Mode: apps.SmoothColumns,
		CkptDir: sdir, CkptEvery: *ckptEvery, IO: io,
	}
	if _, err := apps.RunSmoothing(sbase); err != nil {
		log.Fatal(err)
	}
	damageLatest(sdir)
	srec := sbase
	srec.Recover, srec.Validate = true, true
	sres, err := apps.RunSmoothing(srec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max|err| vs serial reference = %.2e\n", sres.MaxErr)
	if sres.MaxErr > 1e-12 {
		log.Fatalf("smoothing deviates after degraded restore (%.3e > 1e-12)", sres.MaxErr)
	}

	pdir := filepath.Join(dir, "pic")
	pio := io
	pio.Redundancy = pario.RedundancyReplica
	fmt.Printf("phase 5: PIC %d cells, %d steps on %d ranks, replica redundancy\n", n, iters, p)
	pbase := apps.PICConfig{
		NCell: n, Steps: iters, P: p, Rebalance: true, RebalanceEvery: 2, InitPerCell: 16,
		CkptDir: pdir, CkptEvery: *ckptEvery, IO: pio,
	}
	if _, err := apps.RunPIC(pbase); err != nil {
		log.Fatal(err)
	}
	damageLatest(pdir)
	prec := pbase
	prec.Recover = true
	pres, err := apps.RunPIC(prec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  particles %v -> %v across the degraded restore\n", pres.ParticlesStart, pres.ParticlesEnd)
	if pres.ParticlesEnd != pres.ParticlesStart {
		log.Fatal("particle conservation violated after degraded restore")
	}
	fmt.Println("\nall three applications restored correct state from a damaged epoch")
}

// damageLatest deletes one stripe file of dir's newest committed epoch.
func damageLatest(dir string) {
	epoch, man, err := ckpt.LatestEpoch(dir)
	if err != nil || epoch < 0 {
		log.Fatalf("no committed checkpoint in %s (epoch %d, %v)", dir, epoch, err)
	}
	victim := man.Stripes[len(man.Stripes)/2].Name
	if err := os.Remove(filepath.Join(ckpt.EpochDir(dir, epoch), victim)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deleted %s from epoch %d\n", victim, epoch)
}

// runStraggler demonstrates the straggler defense end to end: the same
// dynamic ADI run with -slow-rank's compute sections stretched
// -slow-factor×, three times over — mitigation off (the straggler's
// critical path sets the pace and everyone else waits at the barriers),
// with throughput-weighted B_BLOCK rebalancing (the slow rank keeps
// proportionally less of each dimension), and with voluntary drain
// (checkpoint, scale-in by the straggler, survivors replay onto the
// shrunken membership).  Every run must classify the injected rank
// Degraded from the heartbeat-carried work reports and still match the
// serial reference bit for bit.
func runStraggler() {
	fmt.Printf("\n== E9: straggler defense (health scoring, weighted rebalance, voluntary drain) ==\n")
	n, iters, p := 64, 40, 4
	if *quick {
		n, iters = 48, 30
	}
	to, retries := *commTimeout, *commRetries
	if to == 0 {
		to = 250 * time.Millisecond
	}
	if retries == 0 {
		retries = 2
	}
	hw := *healthWin
	if hw <= 0 {
		hw = 4
	}
	policies := []string{"off", "rebalance", "drain"}
	if *drainOnly {
		policies = []string{"drain"}
	}
	fmt.Printf("ADI %dx%d, %d iters on %d ranks; rank %d's compute stretched %g×\n",
		n, n, iters, p, *slowRank, *slowFactor)
	fmt.Printf("scorer: %d-observation EWMA window, Degraded at 2× the median cost/element, hysteresis 2\n", hw)

	var offHealth []health.RankReport
	walls := map[string]time.Duration{}
	w := tab()
	fmt.Fprintln(w, "policy\tdegraded rank\tmitigation\tepoch\tdrained\twall\tmax|err|")
	for _, policy := range policies {
		cfg := apps.ADIConfig{
			NX: n, NY: n, Iters: iters, P: p, Mode: apps.ADIDynamic, Validate: true,
			Alpha: *alpha, Beta: *beta,
			CommTimeout: to, CommRetries: retries,
			Liveness: &machine.LivenessConfig{Interval: 5 * time.Millisecond},
			Straggler: apps.StragglerConfig{
				HealthWindow: hw, DegradedRatio: 2, Hysteresis: 2,
				Policy: policy, CheckAfter: 3,
				SlowRank: *slowRank, SlowFactor: *slowFactor,
			},
		}
		if policy == "drain" {
			dir := *ckptDir
			if dir == "" {
				var err error
				if dir, err = os.MkdirTemp("", "vfckpt-*"); err != nil {
					log.Fatal(err)
				}
				defer os.RemoveAll(dir)
			}
			cfg.CkptDir, cfg.CkptEvery, cfg.IO = dir, *ckptEvery, ioCfg()
		}
		res, err := apps.RunADI(cfg)
		if err != nil {
			log.Fatalf("straggler run (policy %s): %v", policy, err)
		}
		if *slowFactor > 1 && res.DegradedRank != *slowRank {
			log.Fatalf("policy %s: health scorer classified rank %d Degraded, want the injected straggler %d",
				policy, res.DegradedRank, *slowRank)
		}
		if policy == "drain" {
			if res.FinalEpoch < 1 {
				log.Fatalf("drain finished on membership epoch %d: the straggler was never drained", res.FinalEpoch)
			}
			if len(res.Drained) != 1 || res.Drained[0] != *slowRank {
				log.Fatalf("drained ranks %v, want [%d]", res.Drained, *slowRank)
			}
		}
		if res.MaxErr != 0 {
			log.Fatalf("policy %s deviates from the serial reference: max|err| = %g (want bit-for-bit 0)",
				policy, res.MaxErr)
		}
		walls[policy] = res.Wall
		if offHealth == nil {
			offHealth = res.Health
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%v\t%v\t%g\n",
			policy, res.DegradedRank, orDash(res.Mitigation), res.FinalEpoch, res.Drained,
			res.Wall.Round(time.Millisecond), res.MaxErr)
	}
	w.Flush()

	// The scorer's per-rank evidence from the first run: the straggler is
	// the rank whose EWMA cost per element sits far above the median
	// while every other rank tracks it.
	if len(offHealth) > 0 {
		fmt.Println("\nper-rank health report (first run):")
		pw := tab()
		fmt.Fprintln(pw, "rank\tclass\tslowdown\tobservations")
		for _, r := range offHealth {
			ever := ""
			if r.EverDegraded {
				ever = "  (classified Degraded during the run)"
			}
			fmt.Fprintf(pw, "%d\t%s\t%.2f×\t%d%s\n", r.Rank, r.Class, r.Slowdown, r.Observations, ever)
		}
		pw.Flush()
	}
	if !*drainOnly {
		fmt.Printf("\nwall clock: off %v, rebalance %v, drain %v\n",
			walls["off"].Round(time.Millisecond), walls["rebalance"].Round(time.Millisecond),
			walls["drain"].Round(time.Millisecond))
		fmt.Println("every policy's result matches the fault-free serial reference bit for bit")
	}
}

// orDash renders an empty string as "-" in a table cell.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func runRedist() {
	budget, err := redist.ParseBudget(*redistBgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== E4: DISTRIBUTE cost (claim C4) ==\n")
	fmt.Println("Redistribution moves real data and maintains descriptors; the schedule")
	fmt.Println("cache makes phase-alternating patterns cheap after the first round.")
	if budget > 0 {
		fmt.Printf("memory budget: peak resident wire bytes per rank bounded to %d\n", budget)
	}
	w := tab()
	fmt.Fprintln(w, "transition\tN\tP\tbytes/redist\tmsgs/redist\twall/redist\tcache h/m\tpeak wire B")
	type pair struct {
		name     string
		from, to []dist.DimSpec
		n0, n1   int
	}
	n := 1 << 16
	if *quick {
		n = 1 << 12
	}
	pairs := []pair{
		{"BLOCK -> CYCLIC", []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(1)}, n, 0},
		{"BLOCK -> CYCLIC(8)", []dist.DimSpec{dist.BlockDim()}, []dist.DimSpec{dist.CyclicDim(8)}, n, 0},
		{"(:,BLOCK) -> (BLOCK,:)", []dist.DimSpec{dist.ElidedDim(), dist.BlockDim()}, []dist.DimSpec{dist.BlockDim(), dist.ElidedDim()}, 256, n / 256},
	}
	for _, pr := range pairs {
		res, err := apps.RunRedistCost(apps.RedistCostConfig{
			N0: pr.n0, N1: pr.n1, P: 4, Rounds: 4, From: pr.from, To: pr.to,
			Alpha: *alpha, Beta: *beta, MemBudget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t4\t%.0f\t%.0f\t%v\t%d/%d\t%d\n",
			pr.name, n, res.BytesPerRound, res.MsgsPerRound, res.WallPerRound,
			res.CacheHits, res.CacheMisses, res.PeakWireBytes)
		if budget > 0 && res.PeakWireBytes > budget {
			log.Fatalf("measured peak wire bytes %d exceed the -redist-budget %d", res.PeakWireBytes, budget)
		}
		if !res.ValuesPreserved {
			log.Fatal("value preservation violated")
		}
	}
	w.Flush()

	// amortization: iterations needed before the dynamic ADI beats static
	fmt.Println("\nADI amortization (modeled): per-iteration cost, dynamic vs static")
	w = tab()
	fmt.Fprintln(w, "N\tP\tdynamic model(ms)/iter\tstatic model(ms)/iter\twinner")
	sizes := []int{128, 256}
	if *quick {
		sizes = []int{64}
	}
	for _, nn := range sizes {
		dyn, err := apps.RunADI(apps.ADIConfig{NX: nn, NY: nn, Iters: 4, P: 4, Mode: apps.ADIDynamic, Alpha: *alpha, Beta: *beta, ChunkRows: 1})
		if err != nil {
			log.Fatal(err)
		}
		st, err := apps.RunADI(apps.ADIConfig{NX: nn, NY: nn, Iters: 4, P: 4, Mode: apps.ADIStaticCols, Alpha: *alpha, Beta: *beta, ChunkRows: 1})
		if err != nil {
			log.Fatal(err)
		}
		winner := "dynamic"
		if st.ModelTime < dyn.ModelTime {
			winner = "static"
		}
		fmt.Fprintf(w, "%d\t4\t%.3f\t%.3f\t%s\n", nn, dyn.ModelTime*1e3/4, st.ModelTime*1e3/4, winner)
	}
	w.Flush()
}
