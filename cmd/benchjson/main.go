// Command benchjson converts `go test -bench` output on stdin into a
// JSON array of benchmark records, one per result line:
//
//	go test -bench 'Smoothing|Redistribute' -benchmem . | benchjson -o BENCH.json
//
// Each record carries the benchmark name (GOMAXPROCS suffix stripped),
// the iteration count, and a metrics map keyed by unit — the standard
// ns/op, B/op, allocs/op plus any b.ReportMetric custom units (msgs/run,
// bytes/redist, ...).  Non-benchmark lines pass through to stderr so a
// piped run still shows test failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON to FILE (default stdout)")
	flag.Parse()

	var recs []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			recs = append(recs, r)
		} else if s := strings.TrimSpace(line); s != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read stdin: %v", err)
	}

	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(recs), *out)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkFoo/sub-8   12  345 ns/op  678 B/op  9 allocs/op  1.5 things/run
func parseLine(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	r := record{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		r.Metrics[f[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}
