// Command vfanalyze runs the Vienna Fortran front end and the reaching-
// distribution analysis of paper §3.1 over a source file (or a built-in
// demo program) and prints the analysis report: the set of plausible
// distributions at every array reference, the partial evaluation of DCASE
// arms and IDT conditions, and diagnostics.
//
//	vfanalyze file.vf
//	vfanalyze -demo fig1|fig2|example2|example4|idt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/lang"
	"repro/internal/sem"
)

func main() {
	demo := flag.String("demo", "", "analyze a built-in paper listing: fig1|fig2|example2|example4|idt")
	showSrc := flag.Bool("src", false, "echo the source before the report")
	comm := flag.Bool("comm", false, "also run the communication / memory-requirements analysis")
	np := flag.Int("p", 4, "processor count assumed by the memory estimates")
	flag.Parse()

	var src, name string
	switch {
	case *demo != "":
		name = "demo:" + *demo
		switch *demo {
		case "fig1":
			src = lang.FixtureFig1
		case "fig2":
			src = lang.FixtureFig2
		case "example2":
			src = lang.FixtureExample2
		case "example4":
			src = lang.FixtureExample4
		case "idt":
			src = lang.FixtureIDT
		default:
			log.Fatalf("unknown demo %q", *demo)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		b, err := os.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: vfanalyze <file.vf> | vfanalyze -demo fig1")
		os.Exit(2)
	}

	if *showSrc {
		fmt.Println("---- source ----")
		fmt.Print(src)
		fmt.Println("---- report ----")
	}

	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	unit := sem.Analyze(prog)
	res := analysis.Analyze(unit)
	fmt.Printf("== %s ==\n%s", name, res.Report())
	if *comm && !unit.HasErrors() {
		fmt.Printf("\n%s", analysis.AnalyzeComm(res, *np).Report())
	}
	if unit.HasErrors() {
		os.Exit(1)
	}
}
