// Command vflayout visualizes the ownership map of a Vienna Fortran
// distribution expression: which processor owns each element of an array
// under a given distribution.  The expression uses the language's own
// syntax (parsed by internal/lang), so what you see is what a program's
// DIST annotation would do.
//
//	vflayout -p 4 -n 12 "(BLOCK)"
//	vflayout -p 4 -n 10,10 "(BLOCK, CYCLIC(2))"
//	vflayout -p 6 -procs 2,3 -n 8,8 "(CYCLIC, BLOCK)"
//	vflayout -p 4 -n 12 "(B_BLOCK(3,5,9,12))"
//
// For B_BLOCK/S_BLOCK the parenthesized arguments are the literal bounds/
// sizes.  Output is a grid of processor numbers (dimension 1 down the
// rows, dimension 2 across the columns, Fortran column-major mindset).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/lang"
	"repro/internal/machine"
	redistpkg "repro/internal/redist"
)

func main() {
	np := flag.Int("p", 4, "number of processors")
	nStr := flag.String("n", "12", "array extents, comma-separated")
	procsStr := flag.String("procs", "", "processor array extents (default: 1-D of p)")
	redist := flag.Bool("redist", false, "with two expressions, print the redistribution transfer matrix")
	flag.Parse()
	if flag.NArg() != 1 && !(*redist && flag.NArg() == 2) {
		fmt.Fprintln(os.Stderr, `usage: vflayout [-p N] [-procs 2,2] -n 10,10 "(BLOCK, CYCLIC(2))"`)
		fmt.Fprintln(os.Stderr, `       vflayout -redist [-p N] -n 16 "(BLOCK)" "(CYCLIC)"`)
		os.Exit(2)
	}

	extents, err := parseInts(*nStr)
	if err != nil {
		log.Fatalf("bad -n: %v", err)
	}
	dom := index.Dim(extents...)

	typ, err := parseDistType(flag.Arg(0), dom)
	if err != nil {
		log.Fatal(err)
	}

	m := machine.New(*np)
	defer m.Close()
	var tg dist.Target
	if *procsStr == "" {
		// arrange the processors to match the number of distributed
		// dimensions (near-square factorization for 2-D)
		switch typ.DistributedDims() {
		case 2:
			q := 1
			for f := 1; f*f <= *np; f++ {
				if *np%f == 0 {
					q = f
				}
			}
			tg = m.ProcsDim("R", q, *np/q).Whole()
		default:
			tg = m.ProcsDim("P", *np).Whole()
		}
	} else {
		pe, err := parseInts(*procsStr)
		if err != nil {
			log.Fatalf("bad -procs: %v", err)
		}
		tg = m.ProcsDim("R", pe...).Whole()
	}
	d, err := dist.New(typ, dom, tg)
	if err != nil {
		log.Fatal(err)
	}

	if *redist {
		typ2, err := parseDistType(flag.Arg(1), dom)
		if err != nil {
			log.Fatal(err)
		}
		d2, err := dist.New(typ2, dom, tg)
		if err != nil {
			log.Fatal(err)
		}
		printTransferMatrix(d, d2, *np)
		return
	}

	fmt.Printf("A%v DIST %v TO %v\n", dom, typ, tg)
	if d.Replicated() {
		fmt.Printf("(replicated %d-fold across unused target dimensions; primary owners shown)\n",
			d.ReplicationDegree())
	}
	switch dom.Rank() {
	case 1:
		for i := dom.Lo[0]; i <= dom.Hi[0]; i++ {
			fmt.Printf("%3d", d.Owner(index.Point{i}))
		}
		fmt.Println()
	case 2:
		fmt.Printf("     ")
		for j := dom.Lo[1]; j <= dom.Hi[1]; j++ {
			fmt.Printf("%3d", j)
		}
		fmt.Println("   <- dim 2")
		for i := dom.Lo[0]; i <= dom.Hi[0]; i++ {
			fmt.Printf("%3d |", i)
			for j := dom.Lo[1]; j <= dom.Hi[1]; j++ {
				fmt.Printf("%3d", d.Owner(index.Point{i, j}))
			}
			fmt.Println()
		}
	default:
		fmt.Println("(rank > 2: per-processor element counts only)")
	}
	fmt.Println("\nper-processor element counts:")
	for r := 0; r < *np; r++ {
		fmt.Printf("  P%d: %d", r, d.LocalCount(r))
		if seg, ok := d.Segment(r); ok && d.LocalCount(r) > 0 {
			fmt.Printf("  segment %v", seg)
		}
		fmt.Println()
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// parseDistType parses "(BLOCK, CYCLIC(2))" using the language front end
// by embedding it in a declaration.
func parseDistType(expr string, dom index.Domain) (dist.Type, error) {
	dims := make([]string, dom.Rank())
	for i := range dims {
		dims[i] = "9"
	}
	src := fmt.Sprintf("REAL A(%s) DIST %s\n", strings.Join(dims, ","), expr)
	prog, err := lang.Parse(src)
	if err != nil {
		return dist.Type{}, fmt.Errorf("cannot parse %q: %w", expr, err)
	}
	decl := prog.Stmts[0].(*lang.DeclStmt)
	if decl.Dist == nil {
		return dist.Type{}, fmt.Errorf("no distribution expression in %q", expr)
	}
	specs := make([]dist.DimSpec, len(decl.Dist.Dims))
	for i, d := range decl.Dist.Dims {
		switch d.Kind {
		case lang.DBlock:
			specs[i] = dist.BlockDim()
		case lang.DElided:
			specs[i] = dist.ElidedDim()
		case lang.DCyclic:
			k := 1
			if d.Arg != nil {
				lit, ok := d.Arg.(*lang.IntLit)
				if !ok {
					return dist.Type{}, fmt.Errorf("CYCLIC argument must be a literal")
				}
				k = lit.Value
			}
			specs[i] = dist.CyclicDim(k)
		case lang.DSBlock, lang.DBBlock:
			vals, err := literalList(d.Args)
			if err != nil {
				return dist.Type{}, fmt.Errorf("%v needs literal arguments: %w", d.Kind, err)
			}
			if d.Kind == lang.DSBlock {
				specs[i] = dist.SBlockDim(vals...)
			} else {
				specs[i] = dist.BBlockDim(vals...)
			}
		default:
			return dist.Type{}, fmt.Errorf("unsupported component %v", d.Kind)
		}
	}
	return dist.NewType(specs...), nil
}

// literalList extracts the literal bounds/sizes of B_BLOCK(3,5,9,12).
func literalList(args []lang.Expr) ([]int, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("missing bounds")
	}
	out := make([]int, len(args))
	for i, a := range args {
		lit, ok := a.(*lang.IntLit)
		if !ok {
			return nil, fmt.Errorf("bound %d is not a literal", i+1)
		}
		out[i] = lit.Value
	}
	return out, nil
}

// printTransferMatrix shows, for DISTRIBUTE from -> to, how many elements
// each processor sends to each other processor — the communication
// schedule of §3.2.2 made visible.
func printTransferMatrix(from, to *dist.Distribution, np int) {
	fmt.Printf("DISTRIBUTE A%v :: %v -> %v\n\n", from.Domain(), from.DistType(), to.DistType())
	fmt.Printf("transfer matrix (rows = sender, cols = receiver, elements):\n")
	fmt.Printf("      ")
	for q := 0; q < np; q++ {
		fmt.Printf("%7s", fmt.Sprintf("->P%d", q))
	}
	fmt.Println()
	totalMoved, totalKept := 0, 0
	for r := 0; r < np; r++ {
		sched := redistpkg.Build(from, to, r, np)
		row := make([]int, np)
		for _, tr := range sched.Sends {
			row[tr.Peer] = tr.Count
		}
		fmt.Printf("  P%-3d", r)
		for q := 0; q < np; q++ {
			fmt.Printf("%7d", row[q])
			if q == r {
				totalKept += row[q]
			} else {
				totalMoved += row[q]
			}
		}
		fmt.Println()
	}
	fmt.Printf("\n%d elements stay in place, %d move (%d bytes)\n",
		totalKept, totalMoved, 8*totalMoved)
}
