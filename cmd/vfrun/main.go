// Command vfrun parses a Vienna Fortran subset program, checks it, and
// *executes* it on the Vienna Fortran Engine with P logical processors —
// front end (internal/lang, internal/sem) and runtime (internal/interp,
// internal/core) end to end.
//
//	vfrun -p 4 program.vf
//	vfrun -p 4 -demo fig1
//
// After the run it prints every array's checksum and final distribution
// type, the scalar environment, and the traffic the program generated.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/redist"
	"repro/internal/scale"
	"repro/internal/sem"
	"repro/internal/trace"
)

func main() {
	np := flag.Int("p", 4, "number of processors")
	demo := flag.String("demo", "", "run a built-in paper listing: fig1")
	report := flag.Bool("analyze", false, "print the reaching-distribution report before running")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON trace of the run to FILE and print the per-phase summary")
	faultSpec := flag.String("fault", "", "inject transport faults, e.g. 'senderr,rank=1,after=3,count=2;drop,peer=2,count=1' (kinds: senderr|recverr|delay|drop; see msg.ParseFaultPlan)")
	commTimeout := flag.Duration("comm-timeout", 0, "per-receive deadline inside collectives (0 = wait forever)")
	commRetries := flag.Int("comm-retries", 0, "bounded retries for failed or timed-out collective operations")
	ckptDir := flag.String("ckpt-dir", "", "take coordinated checkpoints into DIR after DISTRIBUTE statements")
	ckptEvery := flag.Int("ckpt-every", 1, "checkpoint after every N-th DISTRIBUTE statement")
	ioServers := flag.Int("io-servers", 0, "number of I/O server ranks (stripe files) per checkpoint epoch (0 = min(P,4))")
	ioRedundancy := flag.String("io-redundancy", "", "checkpoint redundancy mode: parity (default), replica, or none")
	ckptKeep := flag.Int("ckpt-keep", 0, "keep only the newest N committed checkpoint epochs (0 = keep all)")
	recoverRun := flag.Bool("recover", false, "restore the latest committed checkpoint in -ckpt-dir at the first DISTRIBUTE site (the survivors' rank count may differ from the writer's)")
	onlineRec := flag.Bool("online-recover", false, "recover from a mid-run rank loss in-process: survivors regroup onto the next membership epoch and replay the last committed checkpoint (requires -ckpt-dir)")
	deadline := flag.Duration("deadline", 0, "kill the whole process with a goroutine dump if it runs longer than this (hang watchdog; 0 = off)")
	redistBudget := flag.String("redist-budget", "", "bound each DISTRIBUTE's peak resident wire bytes per rank, e.g. 64K, 2M (empty/0 = unbounded)")
	elastic := flag.Bool("elastic", false, "after the run, print the cost-driven grow/shrink advice for P±1 ranks from the run's measured trace (see internal/scale)")
	healthWin := flag.Int("health-window", 0, "score per-rank health from heartbeat-carried work reports over this EWMA observation window and print the report after the run (0 = off; see internal/health)")
	drain := flag.Bool("drain", false, "voluntarily drain a rank classified Degraded at a DISTRIBUTE checkpoint site: members shrink the membership by one epoch and replay the checkpoint (requires -health-window and -ckpt-dir)")
	slowRank := flag.Int("slow-rank", 1, "physical rank the straggler injection marks slow (with -slow-factor)")
	slowFactor := flag.Float64("slow-factor", 1, "inflate -slow-rank's reported per-statement cost by this factor so the health scorer sees a straggler (<=1 = no injection)")
	flag.Parse()
	armDeadline(*deadline)
	budget, err := redist.ParseBudget(*redistBudget)
	if err != nil {
		log.Fatal(err)
	}

	var src, name string
	switch {
	case *demo == "fig1":
		name = "demo:fig1"
		src = `
PARAMETER (NX = 64, NY = 64)
REAL U(NX, NY), F(NX, NY) DIST (:, BLOCK)
REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)), &
&    DIST (:, BLOCK)

DO J = 1, NY
  DO I = 1, NX
    U(I, J) = MOD(I * 3 + J * 7, 5)
    F(I, J) = 1
  ENDDO
ENDDO

CALL RESID( V, U, F, NX, NY)

C Sweep over x-lines
DO J = 1, NY
  CALL TRIDIAG( V(:, J), NX)
ENDDO

DISTRIBUTE V :: ( BLOCK, : )

C Sweep over y-lines
DO I = 1, NX
  CALL TRIDIAG( V(I, :), NY)
ENDDO
`
	case *demo == "fig2":
		name = "demo:fig2"
		src = interp.PICDemoSource
	case *demo != "":
		log.Fatalf("unknown demo %q", *demo)
	case flag.NArg() == 1:
		name = flag.Arg(0)
		b, err := os.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: vfrun [-p N] <file.vf> | vfrun -demo fig1")
		os.Exit(2)
	}

	prog, err := lang.Parse(src)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	unit := sem.Analyze(prog)
	if unit.HasErrors() {
		for _, d := range unit.Diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	if *report {
		fmt.Print(analysis.Analyze(unit).Report())
		fmt.Println()
	}

	var mopts []machine.Option
	var topts []msg.Option
	var tr *trace.Tracer
	if *traceFile != "" || *elastic {
		tr = trace.New(*np)
		mopts = append(mopts, machine.WithTrace(tr))
		topts = append(topts, msg.WithTracer(tr))
	}
	if *faultSpec != "" {
		plan, err := msg.ParseFaultPlan(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		ft := msg.NewFaultTransport(msg.NewChanTransport(*np, topts...), plan)
		mopts = append(mopts, machine.WithTransport(ft))
	}
	if *drain {
		if *healthWin == 0 {
			log.Fatal("-drain requires -health-window (nothing is measured without it)")
		}
		if *ckptDir == "" {
			log.Fatal("-drain requires -ckpt-dir (survivors replay the checkpoint onto the shrunken view)")
		}
	}
	if *onlineRec && *ckptDir == "" {
		log.Fatal("-online-recover requires -ckpt-dir")
	}
	if *onlineRec || *healthWin > 0 {
		// The survivors need failure detection to notice a lost rank, and
		// deadlines so in-flight collectives abort instead of hanging; the
		// health scorer's work reports ride on the same heartbeats.
		mopts = append(mopts, machine.WithLiveness(machine.LivenessConfig{}))
		if *commTimeout == 0 {
			*commTimeout = 150 * time.Millisecond
		}
		if *commRetries == 0 {
			*commRetries = 2
		}
	}
	if *healthWin > 0 {
		mopts = append(mopts, machine.WithHealth(health.Config{Window: *healthWin}))
	}
	if *commTimeout > 0 || *commRetries > 0 {
		mopts = append(mopts, machine.WithCommConfig(msg.CommConfig{
			Timeout: *commTimeout, Retries: *commRetries, Backoff: time.Millisecond,
		}))
	}
	m := machine.New(*np, mopts...)
	defer m.Close()
	e := core.NewEngine(m)
	in := interp.New(e)
	interp.RegisterPICDemo(in)
	in.SetMemBudget(budget)
	in.SetStraggler(*healthWin > 0, *drain, *slowRank, *slowFactor)
	if *recoverRun && *ckptDir == "" {
		log.Fatal("-recover requires -ckpt-dir")
	}
	if *ckptDir != "" {
		in.SetCheckpoint(*ckptDir, *ckptEvery)
		in.SetRecover(*recoverRun)
		in.SetIO(*ioServers, *ioRedundancy, *ckptKeep)
	}

	type arrInfo struct {
		name     string
		sum      float64
		distType string
		epochs   int
	}
	var arrays []arrInfo
	var scalars map[string]float64
	var drainedView atomic.Int64
	drainedView.Store(-1)
	start := time.Now()
	if err := m.Run(func(ctx *machine.Ctx) error {
		// With -online-recover, a body error means a rank was lost: the
		// survivors regroup onto the next membership epoch, share a fresh
		// engine and interpreter (the old arrays are bound to the revoked
		// epoch's numbering), and re-run the program replaying the last
		// committed checkpoint.  The excluded rank returns its error, which
		// Machine.Run treats as a non-fatal exit.  With -drain, a
		// *DrainRankError is the members' agreed decision to shrink the
		// membership by a Degraded rank instead: Ctx.Drain moves the epoch,
		// the drained rank exits non-fatally with ErrDrained, and the
		// survivors take the same recovery re-run path.
		run := in
		st, err := run.Run(ctx, unit)
		for attempt := 1; err != nil && (*onlineRec || *drain) && attempt < *np; attempt++ {
			if errors.Is(err, machine.ErrExcluded) {
				return err
			}
			var dre *interp.DrainRankError
			switch {
			case errors.As(err, &dre):
				drainedView.Store(int64(dre.ViewRank))
				if rerr := ctx.Drain(dre.ViewRank); rerr != nil {
					return rerr
				}
			case *onlineRec:
				if rerr := ctx.Regroup(); rerr != nil {
					return rerr
				}
			default:
				return err
			}
			run = ctx.CollectiveOnce(func() any {
				e2 := core.NewEngine(m)
				i2 := interp.New(e2)
				interp.RegisterPICDemo(i2)
				i2.SetMemBudget(budget)
				i2.SetStraggler(*healthWin > 0, *drain, *slowRank, *slowFactor)
				i2.SetCheckpoint(*ckptDir, *ckptEvery)
				i2.SetIO(*ioServers, *ioRedundancy, *ckptKeep)
				// Replay the last committed checkpoint if there is one; a
				// loss before the first commit restarts from scratch on
				// the survivor view.
				ep, _, _ := ckpt.LatestEpoch(*ckptDir)
				i2.SetRecover(ep >= 0)
				return i2
			}).(*interp.Interp)
			st, err = run.Run(ctx, unit)
		}
		if err != nil {
			return err
		}
		// gather results on rank 0 (collective per array, in order)
		for _, n := range unit.Order {
			arr, ok := st.Array(n)
			if !ok || !arr.Distributed() {
				continue
			}
			sum := 0.0
			data, err := arr.GatherTo(ctx, 0)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				for _, v := range data {
					sum += v
				}
				arrays = append(arrays, arrInfo{n, sum, arr.DistType().String(), arr.Epoch()})
			}
		}
		if ctx.Rank() == 0 {
			scalars = st.Scalars
		}
		return nil
	}); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	wall := time.Since(start)

	fmt.Printf("== %s on %d processors ==\n", name, *np)
	fmt.Println("arrays:")
	for _, a := range arrays {
		fmt.Printf("  %-8s checksum %.6f   final dist %s   (redistributed %d times)\n",
			a.name, a.sum, a.distType, a.epochs)
	}
	var names []string
	for k := range scalars {
		if k[0] != '$' {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Println("scalars:")
		for _, k := range names {
			fmt.Printf("  %-8s %v\n", k, scalars[k])
		}
	}
	sn := m.Stats().Snapshot()
	fmt.Printf("traffic: %d data messages, %d bytes\n", sn.TotalDataMsgs(), sn.TotalBytes())
	if dv := drainedView.Load(); dv >= 0 {
		fmt.Printf("drained: view rank %d left the membership at a DISTRIBUTE checkpoint site; the survivors replayed the checkpoint and finished on %d ranks\n",
			dv, *np-1)
	}
	if *healthWin > 0 {
		if h := m.Health(); h != nil {
			fmt.Println("health:")
			ranks := make([]int, *np)
			for i := range ranks {
				ranks[i] = i
			}
			for _, rr := range h.Report(ranks) {
				suffix := ""
				if rr.EverDegraded {
					suffix = "  [classified Degraded during the run]"
				}
				fmt.Printf("  %s%s\n", rr, suffix)
			}
		}
	}
	if *elastic {
		printScaleAdvice(tr.Summarize(), *np, wall)
	}
	if tr != nil && *traceFile != "" {
		if err := tr.WriteJSONFile(*traceFile); err != nil {
			log.Fatalf("writing trace: %v", err)
		}
		fmt.Printf("\ntrace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
		fmt.Print(tr.Summarize().String())
	}
}

// printScaleAdvice feeds the run's own measurements to the cost-driven
// grow/shrink policy (internal/scale): each executed DISTRIBUTE marks a
// computational phase boundary, so the program's phase count is the
// policy horizon, the trace's per-phase DISTRIBUTE cost is the one-time
// resize price, and the α/β-modeled share of the traffic is the
// np-invariant communication component.
func printScaleAdvice(sum *trace.Summary, np int, wall time.Duration) {
	const alpha, beta = 1e-4, 1e-8 // modeled machine, as in vfbench defaults
	steps := 0
	for _, p := range sum.Phases {
		if p.Cat == trace.CatDistribute {
			steps += p.Count
		}
	}
	if steps == 0 {
		steps = 1
	}
	comm := (alpha*float64(sum.TotalMsgs) + beta*float64(sum.TotalBytes)) / float64(np)
	compute := wall.Seconds() - comm
	if compute < 0 {
		compute = 0
	}
	inv := 1 / float64(steps)
	ps := scale.PerStep{Compute: compute * inv, Comm: comm * inv}
	rc := scale.RedistCost(sum)
	fmt.Printf("elastic advice (%d phases, modeled alpha=%.0e beta=%.0e):\n", steps, alpha, beta)
	for _, npNew := range []int{np + 1, np - 1} {
		if npNew < 1 {
			continue
		}
		adv := scale.Recommend(scale.Params{NP: np, NPNew: npNew, StepsLeft: steps, Step: ps, Redist: rc})
		fmt.Printf("  %d -> %d ranks: %s\n", np, npNew, adv)
	}
}

// armDeadline is a hang watchdog: if the run exceeds d, dump every
// goroutine's stack to stderr and kill the process with a nonzero exit,
// so a wedged collective is diagnosable instead of an eternal hang.
func armDeadline(d time.Duration) {
	if d <= 0 {
		return
	}
	time.AfterFunc(d, func() {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "vfrun: -deadline %v exceeded; goroutine dump:\n%s\n", d, buf[:n])
		os.Exit(2)
	})
}
