package vienna

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface the README's quick
// start promises: machine, engine, declarations, DISTRIBUTE, queries,
// ghost exchange, one-sided access, and stats.
func TestFacadeEndToEnd(t *testing.T) {
	m := NewMachine(4)
	defer m.Close()
	e := NewEngine(m)
	err := m.Run(func(ctx *Ctx) error {
		r := m.ProcsDim("R", 2, 2)
		v := e.MustDeclare(ctx, Decl{
			Name: "V", Domain: Dim(16, 16), Dynamic: true,
			Range: Range{
				NewPattern(PElided(), PBlock()),
				NewPattern(PBlock(), PBlock()),
			},
			Init:  &DistSpec{Type: NewType(Elided(), Block())},
			Ghost: []int{1, 1},
		})
		w := e.MustDeclare(ctx, Decl{
			Name: "W", Domain: Dim(16, 16), Dynamic: true, ConnectTo: "V", Ghost: []int{1, 1},
		})
		v.FillFunc(ctx, func(p Point) float64 { return float64(p[0] + 100*p[1]) })
		ctx.Barrier()
		v.ExchangeAllGhosts(ctx)

		if !IDT(v, NewPattern(PElided(), PBlock())) {
			t.Error("IDT failed on initial distribution")
		}
		e.MustDistribute(ctx, []*Array{v}, DimsOf(Block(), Block()).To(r.Whole()))
		if got := v.Get(ctx, 7, 9); got != 7+900 {
			t.Errorf("V(7,9) = %v", got)
		}
		if !w.DistType().Equal(NewType(Block(), Block())) {
			t.Error("secondary did not follow")
		}
		arm, err := Select(v, w).
			Case(func() error { return nil }, P(NewPattern(PBlock(), PBlock()))).
			Default(func() error { return nil }).
			Run()
		if err != nil || arm != 0 {
			t.Errorf("dcase arm %d err %v", arm, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Snapshot().TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestFacadeCostModel runs the quick-start flow under a cost model and a
// TCP transport to confirm the exported constructors compose.
func TestFacadeCostModelAndTCP(t *testing.T) {
	cm := NewCostModel(2, 1e-4, 1e-9)
	m := NewMachine(2, WithCostModel(cm))
	e := NewEngine(m)
	if err := m.Run(func(ctx *Ctx) error {
		a := e.MustDeclare(ctx, Decl{Name: "A", Domain: Dim(64), Dynamic: true,
			Init: &DistSpec{Type: NewType(Block())}})
		e.MustDistribute(ctx, []*Array{a}, DimsOf(Cyclic(2)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cm.Makespan() == 0 {
		t.Fatal("cost model saw no traffic")
	}
	m.Close()

	tcp, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMachine(2, WithTransport(tcp))
	defer m2.Close()
	e2 := NewEngine(m2)
	if err := m2.Run(func(ctx *Ctx) error {
		a := e2.MustDeclare(ctx, Decl{Name: "A", Domain: Dim(32), Dynamic: true,
			Init: &DistSpec{Type: NewType(Block())}})
		a.Fill(ctx, 3)
		ctx.Barrier()
		e2.MustDistribute(ctx, []*Array{a}, DimsOf(Cyclic(1)))
		if a.Get(ctx, 17) != 3 {
			t.Error("value lost over TCP redistribution")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAlignment checks exported alignment constructors.
func TestFacadeAlignment(t *testing.T) {
	m := NewMachine(4)
	defer m.Close()
	e := NewEngine(m)
	if err := m.Run(func(ctx *Ctx) error {
		c := e.MustDeclare(ctx, Decl{Name: "C", Domain: Dim(8, 8),
			Static: &DistSpec{Type: NewType(Block(), Elided())}})
		d := e.MustDeclare(ctx, Decl{Name: "D", Domain: Dim(8, 8),
			StaticAlign: &Alignment{Maps: []AxisMap{Axis(1), Axis(0)}}, AlignWith: "C"})
		if ctx.Rank() == 0 {
			for _, p := range []Point{{1, 5}, {8, 2}} {
				if d.Dist().Owner(p) != c.Dist().Owner(Point{p[1], p[0]}) {
					t.Errorf("alignment owner mismatch at %v", p)
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
