package vienna_test

import (
	"fmt"

	vienna "repro"
)

// Example reproduces the heart of the paper's Figure 1: a DYNAMIC array
// redistributed between computation phases, with both phases operating on
// purely local data.
func Example() {
	m := vienna.NewMachine(4)
	defer m.Close()
	e := vienna.NewEngine(m)
	_ = m.Run(func(ctx *vienna.Ctx) error {
		// REAL V(64,64) DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST(:,BLOCK)
		v := e.MustDeclare(ctx, vienna.Decl{
			Name: "V", Domain: vienna.Dim(64, 64), Dynamic: true,
			Range: vienna.Range{
				vienna.NewPattern(vienna.PElided(), vienna.PBlock()),
				vienna.NewPattern(vienna.PBlock(), vienna.PElided()),
			},
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Elided(), vienna.Block())},
		})
		// ... x-sweep: every column V(:,J) is local ...

		// DISTRIBUTE V :: (BLOCK, :)
		e.MustDistribute(ctx, []*vienna.Array{v},
			vienna.DimsOf(vienna.Block(), vienna.Elided()))
		// ... y-sweep: every row V(I,:) is local ...

		if ctx.Rank() == 0 {
			fmt.Println("V is now", v.DistType())
		}
		return nil
	})
	// Output: V is now (BLOCK,:)
}

// ExampleSelect shows the DCASE construct dispatching on the current
// distribution type (paper §2.5.1).
func ExampleSelect() {
	m := vienna.NewMachine(2)
	defer m.Close()
	e := vienna.NewEngine(m)
	_ = m.Run(func(ctx *vienna.Ctx) error {
		b := e.MustDeclare(ctx, vienna.Decl{
			Name: "B", Domain: vienna.Dim(16), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Cyclic(2))},
		})
		if ctx.Rank() != 0 {
			return nil
		}
		_, err := vienna.Select(b).
			Case(func() error { fmt.Println("block algorithm"); return nil },
				vienna.P(vienna.NewPattern(vienna.PBlock()))).
			Case(func() error { fmt.Println("cyclic algorithm"); return nil },
				vienna.P(vienna.NewPattern(vienna.PCyclicAny()))).
			Default(func() error { fmt.Println("generic algorithm"); return nil }).
			Run()
		return err
	})
	// Output: cyclic algorithm
}

// ExampleIDT shows the intrinsic distribution test (paper §2.5.2).
func ExampleIDT() {
	m := vienna.NewMachine(2)
	defer m.Close()
	e := vienna.NewEngine(m)
	_ = m.Run(func(ctx *vienna.Ctx) error {
		b := e.MustDeclare(ctx, vienna.Decl{
			Name: "B", Domain: vienna.Dim(8, 8), Dynamic: true,
			Init: &vienna.DistSpec{Type: vienna.NewType(vienna.Elided(), vienna.Block())},
		})
		if ctx.Rank() == 0 {
			fmt.Println(vienna.IDT(b, vienna.NewPattern(vienna.PElided(), vienna.PBlock())))
		}
		return nil
	})
	// Output: true
}
