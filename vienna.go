// Package vienna is a Go reproduction of the dynamic data-distribution
// system of Vienna Fortran, after:
//
//	B. Chapman, P. Mehrotra, H. Moritsch, H. Zima.
//	"Dynamic Data Distributions in Vienna Fortran", Supercomputing '93
//	(NASA CR-191575 / ICASE Report 93-92).
//
// The package is a facade over the engine packages in internal/: it
// re-exports the SPMD machine, the distribution sublanguage (BLOCK,
// CYCLIC(k), S_BLOCK, B_BLOCK, alignment), dynamically distributed arrays
// with connect classes, the executable DISTRIBUTE statement with
// NOTRANSFER, and the DCASE/IDT query constructs.
//
// # Quick start
//
//	m := vienna.NewMachine(4)
//	defer m.Close()
//	e := vienna.NewEngine(m)
//	err := m.Run(func(ctx *vienna.Ctx) error {
//		// REAL V(100,100) DYNAMIC, DIST(:, BLOCK)
//		v := e.MustDeclare(ctx, vienna.Decl{
//			Name:    "V",
//			Domain:  vienna.Dim(100, 100),
//			Dynamic: true,
//			Init:    &vienna.DistSpec{Type: vienna.NewType(vienna.Elided(), vienna.Block())},
//		})
//		// ... x-sweep with local columns ...
//		// DISTRIBUTE V :: (BLOCK, :)
//		e.MustDistribute(ctx, []*vienna.Array{v}, vienna.DimsOf(vienna.Block(), vienna.Elided()))
//		// ... y-sweep with local rows ...
//		return nil
//	})
//
// # Overlapping computation with communication
//
// Ghost (overlap) areas refresh through one-sided windows: each put lands
// directly in the neighbour's halo, so the exchange can stay in flight
// while the owning processor computes its interior:
//
//	h, err := u.StartExchangeAllGhosts(ctx) // halos leave as one-sided puts
//	if err != nil {
//		return err
//	}
//	// ... update points whose stencil reads no ghost cell ...
//	if err := h.Wait(); err != nil {        // halos are now readable
//		return err
//	}
//	// ... update the segment-boundary points ...
//
// The synchronous u.ExchangeAllGhosts(ctx) is the start+wait pair in one
// call.
//
// See examples/ for complete programs (the paper's ADI and PIC codes among
// them) and DESIGN.md for the architecture.
package vienna

import (
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/darray"
	"repro/internal/dist"
	"repro/internal/index"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/query"
	"repro/internal/trace"
)

// Machine is the SPMD execution engine: P logical processors connected by
// a message transport.
type Machine = machine.Machine

// Ctx is one processor's view of the machine during an SPMD run.
type Ctx = machine.Ctx

// ProcArray is a named multi-dimensional arrangement of processors
// (PROCESSORS R(1:M,1:M)).
type ProcArray = machine.ProcArray

// ProcSection is a rectangular subset of a processor array, usable as a
// distribution target ("TO R(...)").
type ProcSection = machine.ProcSection

// MachineOption configures NewMachine (see WithTrace and the
// machine package's options).
type MachineOption = machine.Option

// NewMachine creates a machine with np logical processors on the
// in-process transport.  Use machine options for TCP or a cost model.
func NewMachine(np int, opts ...machine.Option) *Machine { return machine.New(np, opts...) }

// WithTransport runs the machine on a specific transport.
var WithTransport = machine.WithTransport

// WithCostModel attaches a Hockney α/β cost model.
var WithCostModel = machine.WithCostModel

// WithTrace attaches an event tracer to the machine's transport; see
// NewTracer.
var WithTrace = machine.WithTrace

// Tracer records per-processor span/message timelines (the SPMD tracing
// subsystem).  Export with Tracer.WriteJSON (Chrome trace_event format)
// or aggregate with Tracer.Summarize.
type Tracer = trace.Tracer

// TraceSummary is the per-phase cost account of a recorded trace.
type TraceSummary = trace.Summary

// NewTracer creates an enabled tracer for np logical processors; attach
// it with WithTrace (or msg.WithTracer on a custom transport).
var NewTracer = trace.New

// PhaseBegin opens a named user phase on the calling processor's trace
// timeline (no-op when the machine has no tracer).
func PhaseBegin(ctx *Ctx, name string) { ctx.PhaseBegin(name) }

// PhaseEnd closes the named user phase opened by PhaseBegin.
func PhaseEnd(ctx *Ctx, name string) { ctx.PhaseEnd(name) }

// NewTCPTransport builds a TCP-loopback transport for np processors.
var NewTCPTransport = msg.NewTCPTransport

// NewChanTransport builds the in-process channel transport explicitly
// (NewMachine defaults to it); useful as the base of a FaultTransport.
var NewChanTransport = msg.NewChanTransport

// CommConfig bounds how long collectives wait on the transport: a
// per-receive deadline with bounded retry and exponential escalation.
// Install it machine-wide with WithCommConfig; the zero value blocks
// forever (the historical behaviour).
type CommConfig = msg.CommConfig

// WithCommConfig installs a deadline/retry policy on every processor's
// collectives.
var WithCommConfig = machine.WithCommConfig

// FaultTransport decorates any transport with deterministic, seedable
// injection of send errors, delivery delays, and dropped frames — see
// msg.ParseFaultPlan for the rule syntax shared with vfrun's -fault flag.
type FaultTransport = msg.FaultTransport

// FaultPlan is a set of fault rules plus the seed for probabilistic ones.
type FaultPlan = msg.FaultPlan

// NewFaultTransport wraps a transport with a fault plan.
var NewFaultTransport = msg.NewFaultTransport

// ParseFaultPlan parses the -fault flag syntax into a FaultPlan.
var ParseFaultPlan = msg.ParseFaultPlan

// LivenessConfig configures the heartbeat failure detector: each rank
// heartbeats every Interval and marks a peer dead after Window of
// silence (defaults: 10ms / 8×Interval).
type LivenessConfig = machine.LivenessConfig

// WithLiveness enables the heartbeat failure detector; after a failed
// run, Machine.Survivors reports the ranks still alive.
var WithLiveness = machine.WithLiveness

// Manifest describes one committed checkpoint epoch: the arrays, their
// recorded distributions, and the per-rank file checksums. Take
// checkpoints with Engine.Checkpoint and replay them — onto the same or
// a smaller machine — with Engine.Restore; see internal/ckpt and
// DESIGN.md "Checkpoint & recovery semantics".
type Manifest = ckpt.Manifest

// LatestEpoch reports the newest committed checkpoint epoch in dir and
// its manifest (-1 and nil when none exists).
var LatestEpoch = ckpt.LatestEpoch

// NewCostModel creates a Hockney cost model (alpha seconds per message,
// beta seconds per byte).
var NewCostModel = msg.NewCostModel

// CostModel tracks per-processor virtual clocks under the α/β model.
type CostModel = msg.CostModel

// Stats collects per-processor message/byte counters.
type Stats = msg.Stats

// Snapshot is a point-in-time copy of traffic counters.
type Snapshot = msg.Snapshot

// Engine is a Vienna Fortran declaration scope.
type Engine = core.Engine

// NewEngine creates a scope on a machine.
func NewEngine(m *Machine) *Engine { return core.NewEngine(m) }

// Array is a declared Vienna Fortran array (static or DYNAMIC).
type Array = core.Array

// Decl describes an array declaration (DIST / DYNAMIC / RANGE / CONNECT /
// ALIGN annotations).
type Decl = core.Decl

// DistSpec is a distribution expression plus an optional target section.
type DistSpec = core.DistSpec

// Expr is the right-hand side of a DISTRIBUTE statement.
type Expr = core.Expr

// DistOption configures a DISTRIBUTE statement (see NoTransfer).
type DistOption = core.DistOption

// NoTransfer lists secondary arrays whose data a DISTRIBUTE does not
// physically move (the paper's NOTRANSFER attribute).
var NoTransfer = core.NoTransfer

// Sentinel errors of the dynamic-distribution constructs; match with
// errors.Is.
var (
	// ErrRangeViolation: a distribution outside an array's declared RANGE.
	ErrRangeViolation = core.ErrRangeViolation
	// ErrNotPrimary: DISTRIBUTE or CallWith on a non-primary array.
	ErrNotPrimary = core.ErrNotPrimary
	// ErrAlreadyDeclared: duplicate array name in one scope.
	ErrAlreadyDeclared = core.ErrAlreadyDeclared
)

// Dims, DimsOf, Lit, From, FromDim and AlignWith build DISTRIBUTE
// right-hand sides; see paper Example 3 for the extraction form.
var (
	Dims      = core.Dims
	DimsOf    = core.DimsOf
	Lit       = core.Lit
	From      = core.From
	FromDim   = core.FromDim
	AlignWith = core.AlignWith
)

// Domain is a rectangular index domain with inclusive bounds.
type Domain = index.Domain

// Point is a multi-dimensional index.
type Point = index.Point

// Dim builds the Fortran-default domain 1:n1, 1:n2, ...
var Dim = index.Dim

// NewDomain builds a domain from explicit (lo,hi) pairs.
var NewDomain = index.NewDomain

// DimSpec is a per-dimension distribution specifier.
type DimSpec = dist.DimSpec

// Type is a distribution type such as (BLOCK, CYCLIC(3), :).
type Type = dist.Type

// Distribution is a type applied to a domain and a processor section.
type Distribution = dist.Distribution

// Alignment is an index mapping between two arrays' domains.
type Alignment = dist.Alignment

// AxisMap is one axis of an alignment.
type AxisMap = dist.AxisMap

// Distribution-expression constructors.
func Block() DimSpec            { return dist.BlockDim() }
func Cyclic(k int) DimSpec      { return dist.CyclicDim(k) }
func SBlock(sz ...int) DimSpec  { return dist.SBlockDim(sz...) }
func BBlock(b ...int) DimSpec   { return dist.BBlockDim(b...) }
func Elided() DimSpec           { return dist.ElidedDim() }
func NewType(d ...DimSpec) Type { return dist.NewType(d...) }

// Alignment constructors.
var (
	Axis              = dist.Axis
	AxisAffine        = dist.AxisAffine
	AxisConst         = dist.AxisConst
	NewAlignment      = dist.NewAlignment
	IdentityAlignment = dist.Identity
	Transpose2D       = dist.Transpose2D
)

// Pattern is a distribution-type pattern for queries and RANGE.
type Pattern = dist.Pattern

// DimPattern matches one dimension in a query.
type DimPattern = dist.DimPattern

// Range is the RANGE annotation: the set of admissible distribution
// types of a dynamic array.
type Range = dist.Range

// Pattern constructors for DCASE / IDT / RANGE.
var (
	PAny       = dist.PAny
	PBlock     = dist.PBlock
	PCyclic    = dist.PCyclic
	PCyclicAny = dist.PCyclicAny
	PElided    = dist.PElided
	PSBlock    = dist.PSBlock
	PBBlock    = dist.PBBlock
	NewPattern = dist.NewPattern
	AnyPattern = dist.AnyPattern
	PatternOf  = dist.PatternOf
)

// IDT is the intrinsic distribution-type test (§2.5.2).
var IDT = query.IDT

// Select starts a DCASE construct (§2.5.1).
var Select = query.Select

// On and P build name-tagged and positional queries.
var (
	On = query.On
	P  = query.P
)

// Q is one query of a DCASE condition list.
type Q = query.Q

// Local is one processor's storage for its part of an array.
type Local = darray.Local

// GhostHandle is an in-flight asynchronous ghost exchange, returned by
// Array.StartExchangeGhosts / Array.StartExchangeAllGhosts.  The halos
// travel as one-sided puts into the neighbours' overlap areas; call Wait
// before reading the refreshed ghost cells.  See "Overlapping computation
// with communication" in the package documentation.
type GhostHandle = darray.GhostHandle

// Window is a one-sided communication window: each processor registers
// its []float64 storage, after which any processor may Put into (or Get
// out of) a peer's registered region without the peer posting a receive.
// It offers counted put streams (PutAsync/AwaitPut — the ghost-exchange
// discipline) and MPI-style fence epochs (Put/Get/Fence).  The ghost
// machinery uses windows internally; they are exported for custom
// one-sided protocols over the same transports.
type Window = msg.Window

// NewWindow creates a one-sided window shared by np processors; every
// rank registers its storage with Window.Register before remote access.
var NewWindow = msg.NewWindow

// Rect describes a strided hyper-rectangular region of a window's
// registered storage (offset plus per-dimension stride/count pairs).
type Rect = msg.Rect

// RectDim is one dimension of a Rect.
type RectDim = msg.RectDim

// RectRun builds a one-dimensional contiguous Rect.
var RectRun = msg.RectRun

// WithGhost declares overlap (ghost) areas on an array declaration;
// pass the widths through Decl.Ghost instead when using Declare.
var WithGhost = darray.WithGhost
